module Json = Secpol_staticflow.Lint.Json

type counter = { mutable c : int }

type hist = {
  mutable n : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
  bucket_counts : int array;  (* index b counts samples with 2^b <= s < 2^(b+1); index 0 also holds 0 *)
}

type gauge = { mutable g : int }

type entry = C of counter | H of hist | G of gauge

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable rev_order : string list;
}

type histogram = hist

let create () = { tbl = Hashtbl.create 16; rev_order = [] }

let register t name entry =
  Hashtbl.add t.tbl name entry;
  t.rev_order <- name :: t.rev_order

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c
  | Some (H _ | G _) ->
      invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)
  | None ->
      let c = { c = 0 } in
      register t name (C c);
      c

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c.c <- c.c + by

let count c = c.c

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c.c
  | Some (H _ | G _) | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (G g) -> g
  | Some (C _ | H _) ->
      invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)
  | None ->
      let g = { g = 0 } in
      register t name (G g);
      g

let set g v = g.g <- v
let add g d = g.g <- g.g + d
let gauge_read g = g.g

let gauge_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (G g) -> g.g
  | Some (C _ | H _) | None -> 0

let hist_buckets = 62

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> h
  | Some (C _ | G _) ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)
  | None ->
      let h =
        { n = 0; sum = 0; min = 0; max = 0; bucket_counts = Array.make hist_buckets 0 }
      in
      register t name (H h);
      h

let bucket_of sample =
  let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
  go 0 sample

let observe h sample =
  if sample < 0 then invalid_arg "Metrics.observe: negative sample";
  if h.n = 0 then (
    h.min <- sample;
    h.max <- sample)
  else (
    if sample < h.min then h.min <- sample;
    if sample > h.max then h.max <- sample);
  h.n <- h.n + 1;
  h.sum <- h.sum + sample;
  let b = bucket_of sample in
  h.bucket_counts.(b) <- h.bucket_counts.(b) + 1

type summary = {
  n : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

let summary h =
  let buckets = ref [] in
  for b = hist_buckets - 1 downto 0 do
    if h.bucket_counts.(b) > 0 then
      let upper = if b >= 62 then max_int else (1 lsl (b + 1)) - 1 in
      buckets := (upper, h.bucket_counts.(b)) :: !buckets
  done;
  { n = h.n; sum = h.sum; min = h.min; max = h.max; buckets = !buckets }

let merge_hist ~(into : hist) (src : hist) =
  if src.n > 0 then begin
    if into.n = 0 then (
      into.min <- src.min;
      into.max <- src.max)
    else (
      if src.min < into.min then into.min <- src.min;
      if src.max > into.max then into.max <- src.max);
    into.n <- into.n + src.n;
    into.sum <- into.sum + src.sum;
    Array.iteri
      (fun b c -> into.bucket_counts.(b) <- into.bucket_counts.(b) + c)
      src.bucket_counts
  end

let merge ~into src =
  List.iter
    (fun name ->
      match (Hashtbl.find src.tbl name, Hashtbl.find_opt into.tbl name) with
      | C c, (None | Some (C _)) -> incr ~by:c.c (counter into name)
      | H h, (None | Some (H _)) -> merge_hist ~into:(histogram into name) h
      | G g, (None | Some (G _)) -> add (gauge into name) g.g
      | (C _ | H _ | G _), Some _ ->
          invalid_arg (Printf.sprintf "Metrics.merge: %S changes kind" name))
    (List.rev src.rev_order)

type stat = Counter of int | Gauge of int | Histogram of summary

let stats t =
  List.rev_map
    (fun name ->
      match Hashtbl.find t.tbl name with
      | C c -> (name, Counter c.c)
      | G g -> (name, Gauge g.g)
      | H h -> (name, Histogram (summary h)))
    t.rev_order

let find t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some (C c) -> Some (Counter c.c)
  | Some (G g) -> Some (Gauge g.g)
  | Some (H h) -> Some (Histogram (summary h))

let pp ppf t =
  let width =
    List.fold_left (fun w (name, _) -> Stdlib.max w (String.length name)) 0 (stats t)
  in
  List.iter
    (fun (name, stat) ->
      match stat with
      | Counter c -> Format.fprintf ppf "  %-*s %6d@," width name c
      | Gauge g -> Format.fprintf ppf "  %-*s %6d (gauge)@," width name g
      | Histogram s ->
          if s.n = 0 then Format.fprintf ppf "  %-*s (no samples)@," width name
          else
            Format.fprintf ppf "  %-*s n=%d sum=%d min=%d max=%d avg=%.1f@," width name
              s.n s.sum s.min s.max
              (float_of_int s.sum /. float_of_int s.n))
    (stats t)

(* --- snapshots -------------------------------------------------------- *)

type snapshot = (string * stat) list

let snapshot = stats

let diff ~older newer =
  let old_of name = List.assoc_opt name older in
  List.map
    (fun (name, stat) ->
      match (stat, old_of name) with
      | Counter c, Some (Counter c0) -> (name, Counter (Stdlib.max 0 (c - c0)))
      | Histogram s, Some (Histogram s0) ->
          let buckets =
            List.filter_map
              (fun (upper, c) ->
                let c0 =
                  match List.assoc_opt upper s0.buckets with Some c0 -> c0 | None -> 0
                in
                if c - c0 > 0 then Some (upper, c - c0) else None)
              s.buckets
          in
          ( name,
            Histogram
              {
                n = Stdlib.max 0 (s.n - s0.n);
                sum = Stdlib.max 0 (s.sum - s0.sum);
                min = s.min;
                max = s.max;
                buckets;
              } )
      (* Gauges are instantaneous: the newer value is the interval value.
         Kind changes and names unknown to [older] also keep the newer
         stat whole — a fresh series' first interval is its whole life. *)
      | _, _ -> (name, stat))
    newer

let stat_to_json = function
  | Counter c -> Json.Int c
  | Gauge g -> Json.Obj [ ("gauge", Json.Int g) ]
  | Histogram s ->
      Json.Obj
        [
          ("count", Json.Int s.n);
          ("sum", Json.Int s.sum);
          ("min", Json.Int s.min);
          ("max", Json.Int s.max);
          ( "buckets",
            Json.List
              (List.map
                 (fun (upper, c) -> Json.List [ Json.Int upper; Json.Int c ])
                 s.buckets) );
        ]

let snapshot_to_json snap =
  Json.Obj (List.map (fun (name, stat) -> (name, stat_to_json stat)) snap)

let snapshot_of_json j =
  let exception Bad of string in
  let int = function Json.Int i -> i | _ -> raise (Bad "expected int") in
  let stat_of = function
    | Json.Int c -> Counter c
    | Json.Obj [ ("gauge", Json.Int g) ] -> Gauge g
    | Json.Obj fields -> (
        let f name =
          match List.assoc_opt name fields with
          | Some v -> v
          | None -> raise (Bad (Printf.sprintf "histogram missing %S" name))
        in
        match f "buckets" with
        | Json.List bs ->
            let buckets =
              List.map
                (function
                  | Json.List [ u; c ] -> (int u, int c)
                  | _ -> raise (Bad "bad bucket"))
                bs
            in
            Histogram
              {
                n = int (f "count");
                sum = int (f "sum");
                min = int (f "min");
                max = int (f "max");
                buckets;
              }
        | _ -> raise (Bad "histogram buckets not a list"))
    | _ -> raise (Bad "expected int or object")
  in
  match j with
  | Json.Obj fields -> (
      try Ok (List.map (fun (name, v) -> (name, stat_of v)) fields)
      with Bad msg -> Error ("Metrics.snapshot_of_json: " ^ msg))
  | _ -> Error "Metrics.snapshot_of_json: expected an object"

let to_json t = snapshot_to_json (snapshot t)
let to_json_string t = Json.render (to_json t)
