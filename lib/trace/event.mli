(** Structured trace events for monitored runs.

    One value of {!t} is one observation from an enforcement path: a box
    executing, a surveillance variable changing, a guard retrying, a
    journal checkpointing, a verdict landing. Events are plain data — the
    interpreters never see this type (they talk to {!Secpol_flowgraph.Emit});
    the {!Sink} bridge turns emitter calls into events and decorates them
    with source spans looked up from the graph.

    Two codecs are provided: a line-oriented JSON encoding (JSONL, one
    event per line, round-trip tested: [of_json ∘ to_json = id]) and a
    render-only Chrome trace-event encoding loadable in
    [chrome://tracing] / Perfetto. *)

module Iset = Secpol_core.Iset
module Span = Secpol_flowgraph.Span
module Var = Secpol_flowgraph.Var
module Json = Secpol_staticflow.Lint.Json

type guard_kind = Retry | Degraded

type journal_kind = Checkpoint | Resume | Replay_skip

type dist_kind = Shard_start | Shard_reply | Shard_retry | Shard_lost | Merge

type server_kind =
  | Conn_open
  | Conn_close
  | Session_open
  | Admit
  | Shed
  | Expire
  | Serve
  | Resume_serve
  | Proto_error
  | Drain
  | Restart

type response_kind = Granted | Denied | Hung | Failed

type t =
  | Run of {
      program : string;
      arity : int;
      mode : string;
      allowed : Iset.t;
      inputs : string list;  (** rendered input values *)
    }  (** Header: which program ran under which policy and mechanism. *)
  | Box of { step : int; node : int; span : Span.t option }
      (** A box committed at fuel count [step]. *)
  | Assign of { step : int; node : int; var : Var.t; value : int }
      (** A plain-interpreter assignment [var := value]. *)
  | Taint of {
      step : int;
      node : int;
      span : Span.t option;
      var : Var.t;
      taint : Iset.t;
      srcs : Var.t list;
    }  (** [var]'s surveillance value became [taint], read from [srcs]. *)
  | Pc of {
      step : int;
      node : int;
      span : Span.t option;
      pc : Iset.t;
      srcs : Var.t list;
    }  (** The control-context taint changed ([srcs] empty on restore). *)
  | Condemn of {
      step : int;
      node : int;
      span : Span.t option;
      at_decision : bool;
      taint : Iset.t;
      srcs : Var.t list;
      notice : string;
    }  (** The run was condemned here; [taint] escaped the allowed set. *)
  | Guard of { kind : guard_kind; mechanism : string; attempt : int; detail : string }
      (** A fault guard observed a symptom: a retry or a degradation. *)
  | Journal of { kind : journal_kind; step : int; detail : string }
      (** Journal lifecycle: checkpoint taken, run resumed, record skipped. *)
  | Dist of { kind : dist_kind; shard : int; round : int; detail : string }
      (** Distributed-enforcement lifecycle: a shard enforcer starting,
          its report arriving, a retransmission being requested, a shard
          given up for lost, or the coordinator merging. [shard] is the
          shard index ([-1] for coordinator-level events); [round] is the
          delivery round the observation was made in. *)
  | Server of { kind : server_kind; conn : int; session : string; detail : string }
      (** Enforcement-service lifecycle: connections opening and closing,
          sessions opening, requests admitted / shed / expired / served /
          recovered, protocol errors, drain and restart. [conn] is the
          connection id ([-1] for engine-level events); [session] is the
          session name ([""] when none applies). *)
  | Verdict of { response : response_kind; text : string; steps : int }
      (** Final reply of the run: granted value or denial notice. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val of_reply : Secpol_core.Mechanism.reply -> t
(** The {!Verdict} event of a mechanism reply. *)

val run_header :
  program:string ->
  arity:int ->
  mode:string ->
  allowed:Iset.t ->
  inputs:Secpol_core.Value.t array ->
  t
(** The {!Run} event of a run about to start (inputs are rendered). *)

(** {1 JSONL codec} *)

val to_json : t -> Json.value
val of_json : Json.value -> (t, string) result

val to_jsonl : t -> string
(** One line, no trailing newline. *)

val of_jsonl : string -> (t, string) result

val decode_lines : string -> (t list, string) result
(** Decode a whole JSONL document; blank lines are skipped, the first
    malformed line aborts with its line number. *)

(** {1 Chrome trace-event rendering} *)

val to_chrome : t -> Json.value
(** One Chrome trace-event object ([ph:"X"] complete events for boxes,
    instants for everything else, [ts] in step counts). Render-only: the
    Chrome format is lossy and has no decoder here. *)
