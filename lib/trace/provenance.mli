(** Verdict provenance: why was this run condemned?

    Replays a trace's taint-propagation events ({!Event.Taint},
    {!Event.Pc}, {!Event.Condemn}) and reconstructs, for every disallowed
    input coordinate in the condemning surveillance value, the chain of
    boxes that carried that coordinate from the input to the condemning
    box: input coordinate → variable assignments / control context →
    condemnation.

    Chains are classified: a coordinate that travelled only through
    assignments arrived by {e data} flow (Λ/explicit); one that passed
    through the control-context taint [C̄] at any point arrived by
    {e control} flow (Λ/implicit); a condemnation raised at a decision box
    by the timed mechanism is Λ/timed. *)

module Iset = Secpol_core.Iset
module Span = Secpol_flowgraph.Span
module Var = Secpol_flowgraph.Var

type from = [ `Input  (** origin: the coordinate's own input *) | `Var of Var.t | `Pc ]

type link = {
  step : int;
  node : int;
  span : Span.t option;
  site : [ `Assign of Var.t | `Pc | `Condemn ];
      (** what happened at this box: the coordinate flowed into an
          assigned variable, into the control context, or into the
          condemning check. *)
  taint : Iset.t;  (** the surveillance value bound at this box *)
  from : from;  (** where the coordinate came from *)
}

type chain = {
  coordinate : int;
  via : [ `Data | `Control ];
  links : link list;  (** execution order, ending at the condemning box *)
}

type kind = Explicit | Implicit | Timed | Other of string

val kind_name : kind -> string
(** ["Λ/explicit"], ["Λ/implicit"], ["Λ/timed"], or the raw notice. *)

type explanation = {
  program : string option;  (** from the {!Event.Run} header, if present *)
  mode : string option;
  notice : string;
  kind : kind;
  step : int;  (** fuel count at the condemning box *)
  node : int;  (** the condemning box *)
  span : Span.t option;
  taint : Iset.t;  (** the condemned surveillance value *)
  allowed : Iset.t;
  disallowed : Iset.t;  (** [taint \ allowed] *)
  chains : chain list;  (** one per disallowed coordinate, ascending *)
}

val explain : ?allowed:Iset.t -> Event.t list -> (explanation, string) result
(** [allowed] overrides the policy recorded in the trace's {!Event.Run}
    header (required if the trace has no header). Succeeds for any trace
    ending in a denial; traces of granted runs and traces with no verdict
    at all are errors. Denials that condemn no surveillance value
    (Λ/fuel, Λ/degraded, explicit [violation:] halts...) yield an
    explanation with [kind = Other] and no chains. *)

val pp : Format.formatter -> explanation -> unit
val to_string : explanation -> string
