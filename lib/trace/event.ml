module Iset = Secpol_core.Iset
module Span = Secpol_flowgraph.Span
module Var = Secpol_flowgraph.Var
module Json = Secpol_staticflow.Lint.Json

type guard_kind = Retry | Degraded

type journal_kind = Checkpoint | Resume | Replay_skip

type dist_kind = Shard_start | Shard_reply | Shard_retry | Shard_lost | Merge

type server_kind =
  | Conn_open
  | Conn_close
  | Session_open
  | Admit
  | Shed
  | Expire
  | Serve
  | Resume_serve
  | Proto_error
  | Drain
  | Restart

type response_kind = Granted | Denied | Hung | Failed

type t =
  | Run of {
      program : string;
      arity : int;
      mode : string;
      allowed : Iset.t;
      inputs : string list;
    }
  | Box of { step : int; node : int; span : Span.t option }
  | Assign of { step : int; node : int; var : Var.t; value : int }
  | Taint of {
      step : int;
      node : int;
      span : Span.t option;
      var : Var.t;
      taint : Iset.t;
      srcs : Var.t list;
    }
  | Pc of {
      step : int;
      node : int;
      span : Span.t option;
      pc : Iset.t;
      srcs : Var.t list;
    }
  | Condemn of {
      step : int;
      node : int;
      span : Span.t option;
      at_decision : bool;
      taint : Iset.t;
      srcs : Var.t list;
      notice : string;
    }
  | Guard of { kind : guard_kind; mechanism : string; attempt : int; detail : string }
  | Journal of { kind : journal_kind; step : int; detail : string }
  | Dist of { kind : dist_kind; shard : int; round : int; detail : string }
  | Server of { kind : server_kind; conn : int; session : string; detail : string }
  | Verdict of { response : response_kind; text : string; steps : int }

let equal (a : t) (b : t) = a = b

(* ---------- encoding ---------- *)

let json_of_iset s = Json.List (List.map (fun i -> Json.Int i) (Iset.to_list s))

let json_of_var v = Json.String (Var.to_string v)

let json_of_srcs vs = Json.List (List.map json_of_var vs)

let json_of_span = function
  | None -> Json.Null
  | Some (s : Span.t) ->
      Json.List
        [
          Json.Int s.Span.start_line;
          Json.Int s.Span.start_col;
          Json.Int s.Span.end_line;
          Json.Int s.Span.end_col;
        ]

let guard_kind_name = function Retry -> "retry" | Degraded -> "degraded"

let journal_kind_name = function
  | Checkpoint -> "checkpoint"
  | Resume -> "resume"
  | Replay_skip -> "replay-skip"

let dist_kind_name = function
  | Shard_start -> "shard-start"
  | Shard_reply -> "shard-reply"
  | Shard_retry -> "shard-retry"
  | Shard_lost -> "shard-lost"
  | Merge -> "merge"

let server_kind_name = function
  | Conn_open -> "conn-open"
  | Conn_close -> "conn-close"
  | Session_open -> "session-open"
  | Admit -> "admit"
  | Shed -> "shed"
  | Expire -> "expire"
  | Serve -> "serve"
  | Resume_serve -> "resume-serve"
  | Proto_error -> "proto-error"
  | Drain -> "drain"
  | Restart -> "restart"

let response_kind_name = function
  | Granted -> "granted"
  | Denied -> "denied"
  | Hung -> "hung"
  | Failed -> "failed"

let to_json = function
  | Run { program; arity; mode; allowed; inputs } ->
      Json.Obj
        [
          ("ev", Json.String "run");
          ("program", Json.String program);
          ("arity", Json.Int arity);
          ("mode", Json.String mode);
          ("allowed", json_of_iset allowed);
          ("inputs", Json.List (List.map (fun i -> Json.String i) inputs));
        ]
  | Box { step; node; span } ->
      Json.Obj
        [
          ("ev", Json.String "box");
          ("step", Json.Int step);
          ("node", Json.Int node);
          ("span", json_of_span span);
        ]
  | Assign { step; node; var; value } ->
      Json.Obj
        [
          ("ev", Json.String "assign");
          ("step", Json.Int step);
          ("node", Json.Int node);
          ("var", json_of_var var);
          ("value", Json.Int value);
        ]
  | Taint { step; node; span; var; taint; srcs } ->
      Json.Obj
        [
          ("ev", Json.String "taint");
          ("step", Json.Int step);
          ("node", Json.Int node);
          ("span", json_of_span span);
          ("var", json_of_var var);
          ("taint", json_of_iset taint);
          ("srcs", json_of_srcs srcs);
        ]
  | Pc { step; node; span; pc; srcs } ->
      Json.Obj
        [
          ("ev", Json.String "pc");
          ("step", Json.Int step);
          ("node", Json.Int node);
          ("span", json_of_span span);
          ("pc", json_of_iset pc);
          ("srcs", json_of_srcs srcs);
        ]
  | Condemn { step; node; span; at_decision; taint; srcs; notice } ->
      Json.Obj
        [
          ("ev", Json.String "condemn");
          ("step", Json.Int step);
          ("node", Json.Int node);
          ("span", json_of_span span);
          ("at_decision", Json.Bool at_decision);
          ("taint", json_of_iset taint);
          ("srcs", json_of_srcs srcs);
          ("notice", Json.String notice);
        ]
  | Guard { kind; mechanism; attempt; detail } ->
      Json.Obj
        [
          ("ev", Json.String "guard");
          ("kind", Json.String (guard_kind_name kind));
          ("mechanism", Json.String mechanism);
          ("attempt", Json.Int attempt);
          ("detail", Json.String detail);
        ]
  | Journal { kind; step; detail } ->
      Json.Obj
        [
          ("ev", Json.String "journal");
          ("kind", Json.String (journal_kind_name kind));
          ("step", Json.Int step);
          ("detail", Json.String detail);
        ]
  | Dist { kind; shard; round; detail } ->
      Json.Obj
        [
          ("ev", Json.String "dist");
          ("kind", Json.String (dist_kind_name kind));
          ("shard", Json.Int shard);
          ("round", Json.Int round);
          ("detail", Json.String detail);
        ]
  | Server { kind; conn; session; detail } ->
      Json.Obj
        [
          ("ev", Json.String "server");
          ("kind", Json.String (server_kind_name kind));
          ("conn", Json.Int conn);
          ("session", Json.String session);
          ("detail", Json.String detail);
        ]
  | Verdict { response; text; steps } ->
      Json.Obj
        [
          ("ev", Json.String "verdict");
          ("response", Json.String (response_kind_name response));
          ("text", Json.String text);
          ("steps", Json.Int steps);
        ]

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected int" name)

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected string" name)

let as_bool name = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S: expected bool" name)

let int_field name j =
  let* v = field name j in
  as_int name v

let string_field name j =
  let* v = field name j in
  as_string name v

let bool_field name j =
  let* v = field name j in
  as_bool name v

let int_list name = function
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Int i :: rest -> go (i :: acc) rest
        | _ -> Error (Printf.sprintf "field %S: expected int list" name)
      in
      go [] items
  | _ -> Error (Printf.sprintf "field %S: expected list" name)

let iset_field name j =
  let* v = field name j in
  let* is = int_list name v in
  if List.exists (fun i -> i < 0 || i >= Iset.max_index) is then
    Error (Printf.sprintf "field %S: index out of range" name)
  else Ok (Iset.of_list is)

let var_of_string s =
  let num tail =
    match int_of_string_opt tail with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (Printf.sprintf "bad variable %S" s)
  in
  if s = "y" then Ok Var.Out
  else if String.length s >= 2 && s.[0] = 'x' then
    let* i = num (String.sub s 1 (String.length s - 1)) in
    Ok (Var.Input i)
  else if String.length s >= 2 && s.[0] = 'r' then
    let* i = num (String.sub s 1 (String.length s - 1)) in
    Ok (Var.Reg i)
  else Error (Printf.sprintf "bad variable %S" s)

let var_field name j =
  let* s = string_field name j in
  var_of_string s

let srcs_field name j =
  let* v = field name j in
  match v with
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest ->
            let* v = var_of_string s in
            go (v :: acc) rest
        | _ -> Error (Printf.sprintf "field %S: expected variable list" name)
      in
      go [] items
  | _ -> Error (Printf.sprintf "field %S: expected list" name)

let span_field j =
  let* v = field "span" j in
  match v with
  | Json.Null -> Ok None
  | Json.List [ Json.Int a; Json.Int b; Json.Int c; Json.Int d ] ->
      Ok (Some (Span.make ~start_line:a ~start_col:b ~end_line:c ~end_col:d))
  | _ -> Error "field \"span\": expected null or 4-int list"

let guard_kind_of_string = function
  | "retry" -> Ok Retry
  | "degraded" -> Ok Degraded
  | s -> Error (Printf.sprintf "bad guard kind %S" s)

let journal_kind_of_string = function
  | "checkpoint" -> Ok Checkpoint
  | "resume" -> Ok Resume
  | "replay-skip" -> Ok Replay_skip
  | s -> Error (Printf.sprintf "bad journal kind %S" s)

let dist_kind_of_string = function
  | "shard-start" -> Ok Shard_start
  | "shard-reply" -> Ok Shard_reply
  | "shard-retry" -> Ok Shard_retry
  | "shard-lost" -> Ok Shard_lost
  | "merge" -> Ok Merge
  | s -> Error (Printf.sprintf "bad dist kind %S" s)

let server_kind_of_string = function
  | "conn-open" -> Ok Conn_open
  | "conn-close" -> Ok Conn_close
  | "session-open" -> Ok Session_open
  | "admit" -> Ok Admit
  | "shed" -> Ok Shed
  | "expire" -> Ok Expire
  | "serve" -> Ok Serve
  | "resume-serve" -> Ok Resume_serve
  | "proto-error" -> Ok Proto_error
  | "drain" -> Ok Drain
  | "restart" -> Ok Restart
  | s -> Error (Printf.sprintf "bad server kind %S" s)

let response_kind_of_string = function
  | "granted" -> Ok Granted
  | "denied" -> Ok Denied
  | "hung" -> Ok Hung
  | "failed" -> Ok Failed
  | s -> Error (Printf.sprintf "bad response kind %S" s)

let of_json j =
  let* ev = string_field "ev" j in
  match ev with
  | "run" ->
      let* program = string_field "program" j in
      let* arity = int_field "arity" j in
      let* mode = string_field "mode" j in
      let* allowed = iset_field "allowed" j in
      let* inputs_j = field "inputs" j in
      let* inputs =
        match inputs_j with
        | Json.List items ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | Json.String s :: rest -> go (s :: acc) rest
              | _ -> Error "field \"inputs\": expected string list"
            in
            go [] items
        | _ -> Error "field \"inputs\": expected list"
      in
      Ok (Run { program; arity; mode; allowed; inputs })
  | "box" ->
      let* step = int_field "step" j in
      let* node = int_field "node" j in
      let* span = span_field j in
      Ok (Box { step; node; span })
  | "assign" ->
      let* step = int_field "step" j in
      let* node = int_field "node" j in
      let* var = var_field "var" j in
      let* value = int_field "value" j in
      Ok (Assign { step; node; var; value })
  | "taint" ->
      let* step = int_field "step" j in
      let* node = int_field "node" j in
      let* span = span_field j in
      let* var = var_field "var" j in
      let* taint = iset_field "taint" j in
      let* srcs = srcs_field "srcs" j in
      Ok (Taint { step; node; span; var; taint; srcs })
  | "pc" ->
      let* step = int_field "step" j in
      let* node = int_field "node" j in
      let* span = span_field j in
      let* pc = iset_field "pc" j in
      let* srcs = srcs_field "srcs" j in
      Ok (Pc { step; node; span; pc; srcs })
  | "condemn" ->
      let* step = int_field "step" j in
      let* node = int_field "node" j in
      let* span = span_field j in
      let* at_decision = bool_field "at_decision" j in
      let* taint = iset_field "taint" j in
      let* srcs = srcs_field "srcs" j in
      let* notice = string_field "notice" j in
      Ok (Condemn { step; node; span; at_decision; taint; srcs; notice })
  | "guard" ->
      let* kind_s = string_field "kind" j in
      let* kind = guard_kind_of_string kind_s in
      let* mechanism = string_field "mechanism" j in
      let* attempt = int_field "attempt" j in
      let* detail = string_field "detail" j in
      Ok (Guard { kind; mechanism; attempt; detail })
  | "journal" ->
      let* kind_s = string_field "kind" j in
      let* kind = journal_kind_of_string kind_s in
      let* step = int_field "step" j in
      let* detail = string_field "detail" j in
      Ok (Journal { kind; step; detail })
  | "dist" ->
      let* kind_s = string_field "kind" j in
      let* kind = dist_kind_of_string kind_s in
      let* shard = int_field "shard" j in
      let* round = int_field "round" j in
      let* detail = string_field "detail" j in
      Ok (Dist { kind; shard; round; detail })
  | "server" ->
      let* kind_s = string_field "kind" j in
      let* kind = server_kind_of_string kind_s in
      let* conn = int_field "conn" j in
      let* session = string_field "session" j in
      let* detail = string_field "detail" j in
      Ok (Server { kind; conn; session; detail })
  | "verdict" ->
      let* response_s = string_field "response" j in
      let* response = response_kind_of_string response_s in
      let* text = string_field "text" j in
      let* steps = int_field "steps" j in
      Ok (Verdict { response; text; steps })
  | s -> Error (Printf.sprintf "unknown event kind %S" s)

let to_jsonl e = Json.render (to_json e)

let of_jsonl line =
  let* j = Json.parse line in
  of_json j

let decode_lines doc =
  let lines = String.split_on_char '\n' doc in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
        let l = String.trim l in
        if l = "" then go (lineno + 1) acc rest
        else (
          match of_jsonl l with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines

let pp ppf e = Format.pp_print_string ppf (to_jsonl e)

let of_reply (r : Secpol_core.Mechanism.reply) =
  let response, text =
    match r.Secpol_core.Mechanism.response with
    | Secpol_core.Mechanism.Granted v -> (Granted, Secpol_core.Value.to_string v)
    | Secpol_core.Mechanism.Denied n -> (Denied, n)
    | Secpol_core.Mechanism.Hung -> (Hung, "")
    | Secpol_core.Mechanism.Failed m -> (Failed, m)
  in
  Verdict { response; text; steps = r.Secpol_core.Mechanism.steps }

let run_header ~program ~arity ~mode ~allowed ~inputs =
  Run
    {
      program;
      arity;
      mode;
      allowed;
      inputs =
        Array.to_list (Array.map Secpol_core.Value.to_string inputs);
    }

(* ---------- Chrome trace-event rendering ---------- *)

let chrome ?(args = []) ~name ~cat ~ph ~ts extra =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int 1);
       ("tid", Json.Int 1);
     ]
    @ extra
    @ [ ("args", Json.Obj args) ])

let span_args = function
  | None -> []
  | Some s -> [ ("span", Json.String (Span.to_string s)) ]

let instant ?(args = []) ~name ~cat ~ts () =
  chrome ~args ~name ~cat ~ph:"i" ~ts [ ("s", Json.String "t") ]

let to_chrome = function
  | Run { program; arity; mode; allowed; inputs } ->
      instant ~name:(Printf.sprintf "run %s" program) ~cat:"run" ~ts:0
        ~args:
          [
            ("arity", Json.Int arity);
            ("mode", Json.String mode);
            ("allowed", Json.String (Iset.to_string allowed));
            ("inputs", Json.List (List.map (fun i -> Json.String i) inputs));
          ]
        ()
  | Box { step; node; span } ->
      chrome
        ~name:(Printf.sprintf "box %d" node)
        ~cat:"box" ~ph:"X" ~ts:step
        [ ("dur", Json.Int 1) ]
        ~args:(span_args span)
  | Assign { step; node; var; value } ->
      instant
        ~name:(Printf.sprintf "%s := %d" (Var.to_string var) value)
        ~cat:"assign" ~ts:step
        ~args:[ ("node", Json.Int node) ]
        ()
  | Taint { step; node; span; var; taint; srcs } ->
      instant
        ~name:(Printf.sprintf "λ(%s) = %s" (Var.to_string var) (Iset.to_string taint))
        ~cat:"taint" ~ts:step
        ~args:
          ([
             ("node", Json.Int node);
             ("srcs", Json.List (List.map (fun v -> Json.String (Var.to_string v)) srcs));
           ]
          @ span_args span)
        ()
  | Pc { step; node; span; pc; srcs } ->
      instant
        ~name:(Printf.sprintf "pc = %s" (Iset.to_string pc))
        ~cat:"pc" ~ts:step
        ~args:
          ([
             ("node", Json.Int node);
             ("srcs", Json.List (List.map (fun v -> Json.String (Var.to_string v)) srcs));
           ]
          @ span_args span)
        ()
  | Condemn { step; node; span; at_decision; taint; srcs = _; notice } ->
      instant
        ~name:(Printf.sprintf "condemned: %s" notice)
        ~cat:"condemn" ~ts:step
        ~args:
          ([
             ("node", Json.Int node);
             ("at_decision", Json.Bool at_decision);
             ("taint", Json.String (Iset.to_string taint));
           ]
          @ span_args span)
        ()
  | Guard { kind; mechanism; attempt; detail } ->
      instant
        ~name:(Printf.sprintf "guard %s" (guard_kind_name kind))
        ~cat:"guard" ~ts:attempt
        ~args:[ ("mechanism", Json.String mechanism); ("detail", Json.String detail) ]
        ()
  | Journal { kind; step; detail } ->
      instant
        ~name:(Printf.sprintf "journal %s" (journal_kind_name kind))
        ~cat:"journal" ~ts:step
        ~args:[ ("detail", Json.String detail) ]
        ()
  | Dist { kind; shard; round; detail } ->
      instant
        ~name:(Printf.sprintf "dist %s" (dist_kind_name kind))
        ~cat:"dist" ~ts:round
        ~args:[ ("shard", Json.Int shard); ("detail", Json.String detail) ]
        ()
  | Server { kind; conn; session; detail } ->
      instant
        ~name:(Printf.sprintf "server %s" (server_kind_name kind))
        ~cat:"server" ~ts:0
        ~args:
          [
            ("conn", Json.Int conn);
            ("session", Json.String session);
            ("detail", Json.String detail);
          ]
        ()
  | Verdict { response; text; steps } ->
      instant
        ~name:(Printf.sprintf "verdict %s" (response_kind_name response))
        ~cat:"verdict" ~ts:steps
        ~args:[ ("text", Json.String text) ]
        ()
