(* Prometheus text exposition (render + parse) for Metrics snapshots.

   The original registry name travels in a name="..." label on every
   sample; the sanitized family name is only for Prometheus's benefit.
   Parsing reconstructs the snapshot from the labels, which makes the
   render/parse pair exactly inverse and QCheck-testable. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize name =
  String.map (fun c -> if is_name_char c then c else '_') name

let escape_label v =
  let b = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let unescape_label v =
  let b = Buffer.create (String.length v) in
  let n = String.length v in
  let i = ref 0 in
  while !i < n do
    (if v.[!i] = '\\' && !i + 1 < n then (
       (match v.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | '"' -> Buffer.add_char b '"'
       | 'n' -> Buffer.add_char b '\n'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       incr i)
     else Buffer.add_char b v.[!i]);
    incr i
  done;
  Buffer.contents b

(* --- render ----------------------------------------------------------- *)

let hist_suffixes = [ "_bucket"; "_sum"; "_count" ]

let render ?(prefix = "secpol_") (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  (* Sanitization can collide; keep emitted family names unique so every
     [# TYPE] line is declared once. A histogram additionally reserves
     its implicit [_bucket]/[_sum]/[_count] sample names, so no later
     family (and no earlier one — the reservation is checked both ways)
     can shadow them with a [# TYPE] of its own. *)
  let taken = Hashtbl.create 16 in
  let family_reserving siblings name =
    let base = prefix ^ sanitize name in
    let rec pick candidate i =
      if List.exists (fun s -> Hashtbl.mem taken (candidate ^ s)) ("" :: siblings)
      then pick (Printf.sprintf "%s_%d" base i) (i + 1)
      else (
        List.iter (fun s -> Hashtbl.add taken (candidate ^ s) ()) ("" :: siblings);
        candidate)
    in
    pick base 2
  in
  let family = family_reserving [] in
  let hist_family = family_reserving hist_suffixes in
  let lbl name = Printf.sprintf "{name=\"%s\"}" (escape_label name) in
  let simple kind name v =
    let f = family name in
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f kind);
    Buffer.add_string buf (Printf.sprintf "%s%s %d\n" f (lbl name) v)
  in
  List.iter
    (fun (name, stat) ->
      match (stat : Metrics.stat) with
      | Metrics.Counter c -> simple "counter" name c
      | Metrics.Gauge g -> simple "gauge" name g
      | Metrics.Histogram s ->
          let f = hist_family name in
          let l = escape_label name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" f);
          let cum = ref 0 in
          List.iter
            (fun (upper, c) ->
              cum := !cum + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{name=\"%s\",le=\"%d\"} %d\n" f l
                   upper !cum))
            s.Metrics.buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{name=\"%s\",le=\"+Inf\"} %d\n" f l
               s.Metrics.n);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum{name=\"%s\"} %d\n" f l s.Metrics.sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count{name=\"%s\"} %d\n" f l s.Metrics.n);
          (* Summary bounds as sibling gauge families, tied back to the
             histogram by the name label. *)
          let bound suffix v =
            let bf = family (name ^ suffix) in
            Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" bf);
            Buffer.add_string buf (Printf.sprintf "%s%s %d\n" bf (lbl name) v)
          in
          bound "_min" s.Metrics.min;
          bound "_max" s.Metrics.max)
    snap;
  Buffer.contents buf

(* --- parse ------------------------------------------------------------ *)

type partial_hist = {
  mutable pn : int;
  mutable psum : int;
  mutable pmin : int;
  mutable pmax : int;
  mutable pbuckets : (int * int) list;  (* cumulative, reverse order *)
}

type partial =
  | PCounter of int
  | PGauge of int
  | PHist of partial_hist

exception Parse_error of string

let split_labels s =
  (* ["k=\"v\""] pieces of a {...} label block, respecting escapes. *)
  let out = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let eq =
      match String.index_from_opt s !i '=' with
      | Some e -> e
      | None -> raise (Parse_error "label without '='")
    in
    let key = String.sub s !i (eq - !i) in
    if eq + 1 >= n || s.[eq + 1] <> '"' then
      raise (Parse_error "label value not quoted");
    let j = ref (eq + 2) in
    let b = Buffer.create 16 in
    let fin = ref false in
    while not !fin do
      if !j >= n then raise (Parse_error "unterminated label value")
      else if s.[!j] = '\\' && !j + 1 < n then (
        Buffer.add_char b '\\';
        Buffer.add_char b s.[!j + 1];
        j := !j + 2)
      else if s.[!j] = '"' then fin := true
      else (
        Buffer.add_char b s.[!j];
        incr j)
    done;
    out := (key, unescape_label (Buffer.contents b)) :: !out;
    i := !j + 1;
    if !i < n && s.[!i] = ',' then incr i
  done;
  List.rev !out

let parse text =
  (* Entries keyed by the name label, in first-appearance order.
     Histogram families from # TYPE lines tell us which samples are
     _bucket/_sum/_count; the _min/_max gauges fold into an existing
     histogram entry via the shared name label. *)
  let hist_families = Hashtbl.create 16 in
  let family_kind = Hashtbl.create 16 in
  let entries : (string, partial) Hashtbl.t = Hashtbl.create 16 in
  let rev_order = ref [] in
  let get_hist name =
    match Hashtbl.find_opt entries name with
    | Some (PHist h) -> h
    | Some _ -> raise (Parse_error (Printf.sprintf "%S is not a histogram" name))
    | None ->
        let h = { pn = 0; psum = 0; pmin = 0; pmax = 0; pbuckets = [] } in
        Hashtbl.add entries name (PHist h);
        rev_order := name :: !rev_order;
        h
  in
  let put name p =
    if Hashtbl.mem entries name then
      raise (Parse_error (Printf.sprintf "duplicate series for %S" name));
    Hashtbl.add entries name p;
    rev_order := name :: !rev_order
  in
  let chop m suffix =
    if String.length m > String.length suffix && Filename.check_suffix m suffix
    then Some (String.sub m 0 (String.length m - String.length suffix))
    else None
  in
  (* Collision renaming appends [_<n>] to a family ([render]'s [pick]);
     strip one such group so suffix classification sees the base name. *)
  let strip_collision_suffix m =
    let n = String.length m in
    let i = ref (n - 1) in
    while !i >= 0 && m.[!i] >= '0' && m.[!i] <= '9' do
      decr i
    done;
    if !i >= 0 && !i < n - 1 && m.[!i] = '_' then String.sub m 0 !i else m
  in
  let sample line =
    let brace =
      match String.index_opt line '{' with
      | Some b -> b
      | None -> raise (Parse_error "sample without labels")
    in
    let close =
      match String.rindex_opt line '}' with
      | Some c when c > brace -> c
      | _ -> raise (Parse_error "unterminated label block")
    in
    let metric = String.sub line 0 brace in
    let labels = split_labels (String.sub line (brace + 1) (close - brace - 1)) in
    let value =
      let v = String.trim (String.sub line (close + 1) (String.length line - close - 1)) in
      match int_of_string_opt v with
      | Some i -> i
      | None -> raise (Parse_error (Printf.sprintf "bad sample value %S" v))
    in
    let name =
      match List.assoc_opt "name" labels with
      | Some n -> n
      | None -> raise (Parse_error "sample without a name label")
    in
    (* Route by the emitting family's own [# TYPE] first: every family
       [render] registers gets one, and the histogram sibling samples
       ([_bucket]/[_sum]/[_count]) are exactly the undeclared metrics.
       Suffix matching alone would misroute collision-renamed families
       (a gauge registered as [h_min] before histogram [h] pushes the
       histogram's real min bound to [..._min_2]). *)
    match Hashtbl.find_opt family_kind metric with
    | Some "counter" -> (
        match Hashtbl.find_opt entries name with
        | Some _ ->
            raise (Parse_error (Printf.sprintf "duplicate series for %S" name))
        | None -> put name (PCounter value))
    | Some "gauge" -> (
        match Hashtbl.find_opt entries name with
        | Some (PHist h) ->
            (* The min/max bound of an already-seen histogram, tied back
               by the shared name label; the gauge family may carry a
               collision suffix on top of [_min]/[_max]. *)
            let stem = strip_collision_suffix metric in
            if Filename.check_suffix stem "_min" then h.pmin <- value
            else if Filename.check_suffix stem "_max" then h.pmax <- value
            else
              raise
                (Parse_error
                   (Printf.sprintf "stray sample %S for histogram %S" metric name))
        | Some _ ->
            raise (Parse_error (Printf.sprintf "duplicate series for %S" name))
        | None -> put name (PGauge value))
    | Some k -> raise (Parse_error (Printf.sprintf "unlabelled %s sample" k))
    | None -> (
        let hist_suffix =
          List.find_map
            (fun (suffix, role) ->
              match chop metric suffix with
              | Some base when Hashtbl.mem hist_families base -> Some role
              | _ -> None)
            [ ("_bucket", `Bucket); ("_sum", `Sum); ("_count", `Count) ]
        in
        match hist_suffix with
        | Some `Bucket -> (
            let h = get_hist name in
            match List.assoc_opt "le" labels with
            | Some "+Inf" -> ()
            | Some le -> (
                match int_of_string_opt le with
                | Some upper -> h.pbuckets <- (upper, value) :: h.pbuckets
                | None -> raise (Parse_error (Printf.sprintf "bad le %S" le)))
            | None -> raise (Parse_error "bucket sample without le"))
        | Some `Sum -> (get_hist name).psum <- value
        | Some `Count -> (get_hist name).pn <- value
        | None ->
            raise
              (Parse_error
                 (Printf.sprintf "sample for undeclared family %S" metric)))
  in
  let line_no = ref 0 in
  try
    String.split_on_char '\n' text
    |> List.iter (fun line ->
           incr line_no;
           let line = String.trim line in
           if line = "" then ()
           else if String.length line > 0 && line.[0] = '#' then (
             match String.split_on_char ' ' line with
             | [ "#"; "TYPE"; fam; kind ] ->
                 Hashtbl.replace family_kind fam kind;
                 if kind = "histogram" then Hashtbl.replace hist_families fam ()
             | _ -> () (* HELP and comments: ignored *))
           else sample line);
    let decumulate cum =
      (* ascending cumulative -> per-bucket counts *)
      let rec go prev = function
        | [] -> []
        | (upper, c) :: rest -> (upper, c - prev) :: go c rest
      in
      go 0 (List.rev cum)
    in
    Ok
      (List.rev_map
         (fun name ->
           match Hashtbl.find entries name with
           | PCounter c -> (name, Metrics.Counter c)
           | PGauge g -> (name, Metrics.Gauge g)
           | PHist h ->
               ( name,
                 Metrics.Histogram
                   {
                     Metrics.n = h.pn;
                     sum = h.psum;
                     min = h.pmin;
                     max = h.pmax;
                     buckets = decumulate h.pbuckets;
                   } ))
         !rev_order)
  with Parse_error msg ->
    Error (Printf.sprintf "Expo.parse: line %d: %s" !line_no msg)
