module Space = Secpol_core.Space
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Ast = Secpol_flowgraph.Ast

type params = { arity : int; max_reg : int; depth : int }

let default = { arity = 2; max_reg = 1; depth = 3 }

open QCheck.Gen

let gen_var p =
  oneof
    [
      map (fun i -> Var.Input i) (int_range 0 (p.arity - 1));
      map (fun i -> Var.Reg i) (int_range 0 (max 0 p.max_reg));
      return Var.Out;
    ]

(* Assignable targets: mostly registers and the output; occasionally an
   input variable — the language permits it and the enforcement machinery
   must cope. *)
let gen_target p =
  frequency
    [
      (4, map (fun i -> Var.Reg i) (int_range 0 (max 0 p.max_reg)));
      (4, return Var.Out);
      (1, map (fun i -> Var.Input i) (int_range 0 (p.arity - 1)));
    ]

(* NOTE: generators are eagerly-built values, so the expr/pred recursion
   must bottom out during CONSTRUCTION — every recursive reference strictly
   decreases [n]. *)
let rec gen_expr p n =
  if n <= 0 then
    oneof [ map (fun k -> Expr.Const k) (int_range 0 3); map (fun v -> Expr.Var v) (gen_var p) ]
  else
    frequency
      [
        (4, gen_expr p 0);
        (4, map2 (fun a b -> Expr.Add (a, b)) (gen_expr p (n - 1)) (gen_expr p (n - 1)));
        (2, map2 (fun a b -> Expr.Sub (a, b)) (gen_expr p (n - 1)) (gen_expr p (n - 1)));
        (2, map2 (fun a b -> Expr.Mul (a, b)) (gen_expr p (n - 1)) (gen_expr p (n - 1)));
        (1, map2 (fun a b -> Expr.Bor (a, b)) (gen_expr p (n - 1)) (gen_expr p (n - 1)));
        (1, map2 (fun a b -> Expr.Band (a, b)) (gen_expr p (n - 1)) (gen_expr p (n - 1)));
        ( 1,
          map3
            (fun c a b -> Expr.Cond (c, a, b))
            (gen_pred p (n - 1))
            (gen_expr p (n - 1))
            (gen_expr p (n - 1)) );
      ]

and gen_pred p n =
  let cmp =
    oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]
  in
  map2
    (fun (op, a) b -> Expr.Cmp (op, a, b))
    (pair cmp (gen_expr p n))
    (gen_expr p n)

(* Counter registers for loops live above the general-purpose pool, one per
   nesting level, so a loop body can never change its own counter. *)
let counter_reg p level = Var.Reg (p.max_reg + 1 + level)

let rec gen_stmt p n ~level =
  if n <= 0 then
    frequency
      [
        (1, return Ast.Skip);
        (4, map2 (fun v e -> Ast.Assign (v, e)) (gen_target p) (gen_expr p 1));
      ]
  else
    frequency
      [
        (3, map2 (fun v e -> Ast.Assign (v, e)) (gen_target p) (gen_expr p 2));
        ( 3,
          map2
            (fun a b -> Ast.seq [ a; b ])
            (gen_stmt p (n - 1) ~level)
            (gen_stmt p (n - 1) ~level) );
        ( 2,
          map3
            (fun c a b -> Ast.If (c, a, b))
            (gen_pred p 1)
            (gen_stmt p (n - 1) ~level)
            (gen_stmt p (n - 1) ~level) );
        ( 1,
          let c = counter_reg p level in
          (* Counters seed from a constant or a CLAMPED input — inputs may
             have been reassigned arbitrary values by earlier statements,
             and the termination guarantee rests on bounded trip counts. *)
          let init =
            oneof
              [
                map (fun k -> Expr.Const k) (int_range 0 3);
                map
                  (fun i -> Expr.Band (Expr.Var (Var.Input i), Expr.Const 3))
                  (int_range 0 (p.arity - 1));
              ]
          in
          map2
            (fun e body ->
              Ast.seq
                [
                  Ast.Assign (c, e);
                  Ast.While
                    ( Expr.Cmp (Expr.Gt, Expr.Var c, Expr.Const 0),
                      Ast.seq
                        [ body; Ast.Assign (c, Expr.Sub (Expr.Var c, Expr.Const 1)) ]
                    );
                ])
            init
            (gen_stmt p (n - 1) ~level:(level + 1)) );
      ]

let gen p =
  map
    (fun body -> Ast.prog ~name:"generated" ~arity:p.arity body)
    (gen_stmt p p.depth ~level:0)

(* Candidates strictly smaller than [s], most aggressive first. *)
let rec shrink_stmt s yield =
  match s with
  | Ast.Skip -> ()
  | Ast.Assign (_, Expr.Const _) -> yield Ast.Skip
  | Ast.Assign (v, _) ->
      yield Ast.Skip;
      yield (Ast.Assign (v, Expr.Const 0))
  | Ast.Seq l ->
      yield Ast.Skip;
      (* Drop one element. *)
      List.iteri
        (fun i _ -> yield (Ast.seq (List.filteri (fun j _ -> j <> i) l)))
        l;
      (* Shrink one element in place. *)
      List.iteri
        (fun i s_i ->
          shrink_stmt s_i (fun s_i' ->
              yield (Ast.seq (List.mapi (fun j s_j -> if j = i then s_i' else s_j) l))))
        l
  | Ast.If (p, a, b) ->
      yield Ast.Skip;
      yield a;
      yield b;
      shrink_stmt a (fun a' -> yield (Ast.If (p, a', b)));
      shrink_stmt b (fun b' -> yield (Ast.If (p, a, b')))
  | Ast.While (p, body) ->
      yield Ast.Skip;
      yield body;
      shrink_stmt body (fun body' -> yield (Ast.While (p, body')))
  | Ast.At (_, s) ->
      yield s;
      shrink_stmt s yield

let shrink (prog : Ast.prog) yield =
  shrink_stmt prog.Ast.body (fun body -> yield { prog with Ast.body })

let arbitrary p =
  QCheck.make
    ~print:(fun prog -> Format.asprintf "%a" Ast.pp_prog prog)
    ~shrink (gen p)

let space_for p = Space.ints ~lo:0 ~hi:2 ~arity:p.arity
