(** Deterministic fault plans for the enforcement service.

    Where {!Plan} scripts failures of the monitor and {!Secpol_dist}'s
    plan scripts failures of a shard fleet, a server plan scripts the
    failures a long-lived enforcement daemon sees from the outside world:
    clients that disconnect mid-frame, slow writers that trickle a frame
    past its deadline, malformed or foreign-version bytes, request bursts
    above the admission queue's capacity, and the process being killed
    mid-run and restarted. Plans are pure data derived from an integer
    seed by the shared {!Plan.Rng} splitmix64 stream, so the server chaos
    sweep replays bit-for-bit from its seed. *)

(** How a frame's bytes are damaged on the wire. *)
type damage =
  | Bad_magic  (** the frame header's magic is wrong *)
  | Bad_crc  (** one payload byte flipped under an intact checksum *)
  | Truncated  (** a strict prefix of the frame, then silence *)
  | Foreign_version  (** an intact frame whose payload stamps a foreign wire version *)
  | Garbage  (** bytes that were never a frame *)

(** What happens to one scripted request. *)
type fault =
  | Clean  (** delivered whole, on time *)
  | Disconnect  (** a strict prefix of the frame, then the client hangs up *)
  | Slowloris  (** the frame trickles in slower than the frame deadline *)
  | Malformed of damage
  | Kill  (** the server process dies mid-run; restarted, the client asks again *)

type t = {
  seed : int;  (** generator seed, [-1] if built by hand *)
  faults : fault array;  (** one per scripted request, in arrival order *)
  burst : int;
      (** extra copies of the burst request injected in the same step,
          [0] for no burst — sized to overflow a small admission queue *)
  burst_at : int;  (** index of the request the burst rides on *)
  journaled : bool;  (** the session journals its runs (kills then recover) *)
}

val fault_free : requests:int -> t
(** [requests] clean requests, no burst, journaled. *)

val generate : ?requests:int -> seed:int -> unit -> t
(** Derive a plan deterministically from [seed]: between 3 and [requests]
    (default 6) scripted requests with a fault mix over all five classes,
    a burst on roughly a third of the plans, journaling on roughly half. *)

val is_fault_free : t -> bool

val kills : t -> int
(** Number of [Kill] requests in the plan. *)

val overload : t -> int
(** The burst size ([0] when the plan has no burst). *)

val fault_name : fault -> string

val describe : t -> string

val pp : Format.formatter -> t -> unit
