module Hook = Secpol_flowgraph.Hook

type t = {
  plan : Plan.t;
  mutable attempt : int;
  mutable fired_this_attempt : int;
  mutable fired_total : int;
}

let create plan = { plan; attempt = 1; fired_this_attempt = 0; fired_total = 0 }

let plan t = t.plan

let reset t =
  t.attempt <- 1;
  t.fired_this_attempt <- 0;
  t.fired_total <- 0

let next_attempt t =
  t.attempt <- t.attempt + 1;
  t.fired_this_attempt <- 0

let attempt t = t.attempt
let fired_this_attempt t = t.fired_this_attempt
let fired_total t = t.fired_total

let active t (p : Plan.point) =
  match p.Plan.kind with Plan.Transient k -> t.attempt <= k | _ -> true

let action_of = function
  | Plan.Crash -> Hook.Crash "injected crash"
  | Plan.Corrupt_taint -> Hook.Corrupt
  | Plan.Exhaust_fuel -> Hook.Starve
  | Plan.Transient _ -> Hook.Crash "injected transient crash"

let hook t : Hook.t =
 fun ~step ->
  match
    List.find_opt
      (fun p -> p.Plan.at_step = step && active t p)
      t.plan.Plan.points
  with
  | None -> None
  | Some p ->
      t.fired_this_attempt <- t.fired_this_attempt + 1;
      t.fired_total <- t.fired_total + 1;
      Some (action_of p.Plan.kind)
