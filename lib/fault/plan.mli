(** Deterministic, seedable fault plans.

    A fault plan is a small script of failures to visit on a monitored run:
    {e at step 7, crash; at step 12, flip a bit of a surveillance
    variable}. Plans are pure data generated from an integer seed by a
    splitmix64 PRNG, so a chaos sweep is exactly reproducible from its
    seed — rerunning a failing seed replays the failure bit-for-bit.

    Plans say nothing about {e how} faults are applied; {!Injector} turns a
    plan into the interpreter hook of {!Secpol_flowgraph.Hook}, tracking
    retry attempts so transient faults can clear. *)

(** The failure modes of the enforcement machinery itself. *)
type kind =
  | Crash  (** the monitor dies mid-run with an internal error *)
  | Corrupt_taint  (** one bit of one surveillance variable flips *)
  | Exhaust_fuel  (** the step budget collapses to zero *)
  | Transient of int
      (** [Transient k]: a crash that strikes on attempts [1..k] and
          clears from attempt [k+1] on — the fault a bounded retry loop
          can ride out iff it is allowed at least [k] retries. *)

(** The splitmix64 generator behind {!generate}, exposed so other
    deterministic sweeps (notably the crash-recovery sweep of {!Crash})
    derive their randomness from the same pinned, platform-stable
    sequence. *)
module Rng : sig
  type state

  val create : int -> state

  val below : state -> int -> int
  (** Draw in [\[0, n)]. *)
end

type point = { at_step : int; kind : kind }

type t = {
  seed : int;  (** the seed this plan was generated from, [-1] if built by hand *)
  points : point list;  (** sorted by [at_step] *)
}

val none : t
(** The empty plan: injects nothing; runs are bit-identical to unfaulted
    ones. *)

val make : point list -> t
(** A hand-built plan (sorted, one point per step kept). *)

val generate : ?horizon:int -> ?max_points:int -> seed:int -> unit -> t
(** [generate ~seed ()] derives 1 to [max_points] (default 3) fault points
    with steps below [horizon] (default 24) deterministically from [seed].
    Transient faults clear after 1–3 attempts. *)

val worst_transient : t -> int
(** The largest [k] among [Transient k] points, 0 if none — the number of
    retries needed to outlast every transient fault of the plan. *)

val is_transient_only : t -> bool
(** True iff every point is [Transient _] — i.e. enough retries recover the
    run completely. *)

val kind_name : kind -> string

val describe : t -> string
(** E.g. ["crash@5 transient(2)@11"]; ["(no faults)"] for {!none}. *)

val pp : Format.formatter -> t -> unit
