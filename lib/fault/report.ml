module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Json = Secpol_staticflow.Lint.Json
module Metrics = Secpol_trace.Metrics

let show_input a =
  "(" ^ String.concat "," (Array.to_list (Array.map Value.to_string a)) ^ ")"

let show_response = function
  | Mechanism.Granted v -> "granted " ^ Value.to_string v
  | Mechanism.Denied f -> "denied " ^ f
  | Mechanism.Hung -> "hung"
  | Mechanism.Failed m -> "failed: " ^ m

let show_reply (r : Mechanism.reply) =
  Printf.sprintf "%s (%d steps)" (show_response r.Mechanism.response)
    r.Mechanism.steps

let policies_of_arity arity =
  List.init (1 lsl arity) (fun mask -> Policy.allow_set (Iset.of_mask mask))

type finding = {
  subject : string list;
  fields : (string * Json.value) list;
  detail : string;
}

type t = {
  title : string;
  params : (string * Json.value) list;
  metrics : Metrics.t;
  rows : (string * string * string option) list;
  findings : finding list;
  ok : bool;
  verdict_ok : string;
  verdict_fail : string;
}

let pp ppf r =
  Format.fprintf ppf "%s@." r.title;
  let width =
    List.fold_left (fun w (_, label, _) -> max w (String.length label)) 0 r.rows
  in
  List.iter
    (fun (name, label, note) ->
      Format.fprintf ppf "  %-*s %6d%s@." width label
        (Metrics.counter_value r.metrics name)
        (match note with None -> "" | Some n -> "  (" ^ n ^ ")"))
    r.rows;
  List.iter
    (fun f ->
      Format.fprintf ppf "  ! %s: %s@." (String.concat " / " f.subject)
        f.detail)
    r.findings;
  Format.fprintf ppf "verdict: %s@."
    (if r.ok then r.verdict_ok else r.verdict_fail)

let to_json r =
  let totals =
    List.filter_map
      (fun (name, stat) ->
        match stat with
        | Metrics.Counter n -> Some (name, Json.Int n)
        | Metrics.Histogram _ -> None)
      (Metrics.stats r.metrics)
  in
  Json.Obj
    (r.params
    @ [
        ("totals", Json.Obj totals);
        ( "findings",
          Json.List
            (List.map
               (fun f ->
                 Json.Obj (f.fields @ [ ("detail", Json.String f.detail) ]))
               r.findings) );
        ("metrics", Metrics.to_json r.metrics);
        ("ok", Json.Bool r.ok);
      ])

let to_json_string r = Json.render (to_json r)
