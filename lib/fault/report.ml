module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Json = Secpol_staticflow.Lint.Json
module Metrics = Secpol_trace.Metrics

let show_input a =
  "(" ^ String.concat "," (Array.to_list (Array.map Value.to_string a)) ^ ")"

let show_response = function
  | Mechanism.Granted v -> "granted " ^ Value.to_string v
  | Mechanism.Denied f -> "denied " ^ f
  | Mechanism.Hung -> "hung"
  | Mechanism.Failed m -> "failed: " ^ m

let show_reply (r : Mechanism.reply) =
  Printf.sprintf "%s (%d steps)" (show_response r.Mechanism.response)
    r.Mechanism.steps

let policies_of_arity arity =
  List.init (1 lsl arity) (fun mask -> Policy.allow_set (Iset.of_mask mask))

type finding = {
  subject : string list;
  fields : (string * Json.value) list;
  detail : string;
}

type t = {
  title : string;
  params : (string * Json.value) list;
  metrics : Metrics.t;
  rows : (string * string * string option) list;
  findings : finding list;
  ok : bool;
  verdict_ok : string;
  verdict_fail : string;
}

(* Findings are rendered in sorted order, not accumulation order: a total
   order over their JSON fields (then detail) is a stable key no scheduler
   can perturb, so text and JSON stay byte-identical whatever order the
   sweep discovered them in. *)
let rec compare_json a b =
  match (a, b) with
  | Json.Null, Json.Null -> 0
  | Json.Null, _ -> -1
  | _, Json.Null -> 1
  | Json.Bool a, Json.Bool b -> Bool.compare a b
  | Json.Bool _, _ -> -1
  | _, Json.Bool _ -> 1
  | Json.Int a, Json.Int b -> Int.compare a b
  | Json.Int _, _ -> -1
  | _, Json.Int _ -> 1
  | Json.String a, Json.String b -> String.compare a b
  | Json.String _, _ -> -1
  | _, Json.String _ -> 1
  | Json.List a, Json.List b -> compare_json_list a b
  | Json.List _, _ -> -1
  | _, Json.List _ -> 1
  | Json.Obj a, Json.Obj b ->
      compare_json_list
        (List.map (fun (k, v) -> Json.List [ Json.String k; v ]) a)
        (List.map (fun (k, v) -> Json.List [ Json.String k; v ]) b)

and compare_json_list a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare_json x y in
      if c <> 0 then c else compare_json_list xs ys

let compare_finding a b =
  let c = compare_json (Json.Obj a.fields) (Json.Obj b.fields) in
  if c <> 0 then c else String.compare a.detail b.detail

let sort_findings fs = List.stable_sort compare_finding fs

let pp ppf r =
  Format.fprintf ppf "%s@." r.title;
  let width =
    List.fold_left (fun w (_, label, _) -> max w (String.length label)) 0 r.rows
  in
  List.iter
    (fun (name, label, note) ->
      Format.fprintf ppf "  %-*s %6d%s@." width label
        (Metrics.counter_value r.metrics name)
        (match note with None -> "" | Some n -> "  (" ^ n ^ ")"))
    r.rows;
  List.iter
    (fun f ->
      Format.fprintf ppf "  ! %s: %s@." (String.concat " / " f.subject)
        f.detail)
    (sort_findings r.findings);
  Format.fprintf ppf "verdict: %s@."
    (if r.ok then r.verdict_ok else r.verdict_fail)

let to_json r =
  let totals =
    List.filter_map
      (fun (name, stat) ->
        match stat with
        | Metrics.Counter n -> Some (name, Json.Int n)
        | Metrics.Gauge _ | Metrics.Histogram _ -> None)
      (Metrics.stats r.metrics)
  in
  Json.Obj
    (r.params
    @ [
        ("totals", Json.Obj totals);
        ( "findings",
          Json.List
            (List.map
               (fun f ->
                 Json.Obj (f.fields @ [ ("detail", Json.String f.detail) ]))
               (sort_findings r.findings)) );
        ("metrics", Metrics.to_json r.metrics);
        ("ok", Json.Bool r.ok);
      ])

let to_json_string r = Json.render (to_json r)
