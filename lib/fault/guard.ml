module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Event = Secpol_trace.Event
module Sink = Secpol_trace.Sink

type fault_report = {
  mechanism : string;
  attempts : int;
  symptoms : string list;
  backoff_steps : int;
}

type outcome = Output of Value.t | Notice of string | Degraded of fault_report

type config = {
  retries : int;
  backoff_base : int;
  step_budget : int option;
  jitter : int option;
}

let default =
  { retries = 2; backoff_base = 4; step_budget = None; jitter = None }

let degraded_notice = Secpol_core.Notice.(to_string Degraded) (* Λ/degraded *)
let recovery_notice = Secpol_core.Notice.(to_string Recovery) (* Λ/recovery *)

let reply_of_recovery = function
  | Ok reply -> reply
  | Error _ ->
      { Mechanism.response = Mechanism.Denied recovery_notice; steps = 0 }

(* One attempt's verdict: either a final outcome or a symptom to retry on. *)
let classify config (reply : Mechanism.reply) =
  let over_budget =
    match config.step_budget with
    | Some b -> reply.Mechanism.steps > b
    | None -> false
  in
  if over_budget then
    Error
      (Printf.sprintf "step budget exceeded (%d steps)" reply.Mechanism.steps)
  else
    match reply.Mechanism.response with
    | Mechanism.Granted v -> Ok (Output v)
    | Mechanism.Denied f -> Ok (Notice f)
    | Mechanism.Hung -> Error "hung (step budget exhausted)"
    | Mechanism.Failed msg -> Error msg

let run ?(config = default) ?injector ?(sink = Sink.null) (m : Mechanism.t) a =
  Option.iter Injector.reset injector;
  (* One jitter stream per supervised invocation, seeded from the config:
     the schedule is deterministic per (seed, attempt sequence) — replayable
     like everything else driven by Plan.Rng — while distinct seeds
     desynchronize co-located retry loops. *)
  let jitter_rng = Option.map Plan.Rng.create config.jitter in
  let total_steps = ref 0 in
  let backoff_steps = ref 0 in
  let symptoms = ref [] in
  let rec attempt i =
    let reply =
      (* The supervised mechanism is supposed to be total, but the whole
         point of the guard is not to rely on that. *)
      try Mechanism.respond m a
      with e ->
        { Mechanism.response = Mechanism.Failed (Printexc.to_string e); steps = 0 }
    in
    total_steps := !total_steps + reply.Mechanism.steps;
    match classify config reply with
    | Ok outcome -> outcome
    | Error symptom ->
        symptoms := symptom :: !symptoms;
        if i > config.retries then begin
          Sink.emit sink
            (Event.Guard
               {
                 kind = Event.Degraded;
                 mechanism = m.Mechanism.name;
                 attempt = i;
                 detail = symptom;
               });
          Degraded
            {
              mechanism = m.Mechanism.name;
              attempts = i;
              symptoms = List.rev !symptoms;
              backoff_steps = !backoff_steps;
            }
        end
        else begin
          Sink.emit sink
            (Event.Guard
               {
                 kind = Event.Retry;
                 mechanism = m.Mechanism.name;
                 attempt = i;
                 detail = symptom;
               });
          (* Exponential backoff, charged in steps: under an observable
             clock the penalty is part of the reply's timing. With jitter,
             attempt [i]'s penalty lands in [p, 2p) for p = base * 2^(i-1). *)
          let base_penalty = config.backoff_base * (1 lsl (i - 1)) in
          let penalty =
            match jitter_rng with
            | Some st when base_penalty > 0 ->
                base_penalty + Plan.Rng.below st base_penalty
            | _ -> base_penalty
          in
          backoff_steps := !backoff_steps + penalty;
          total_steps := !total_steps + penalty;
          Option.iter Injector.next_attempt injector;
          attempt (i + 1)
        end
  in
  let outcome = attempt 1 in
  (outcome, !total_steps)

let reply_of_outcome (outcome, steps) =
  let response =
    match outcome with
    | Output v -> Mechanism.Granted v
    | Notice f -> Mechanism.Denied f
    | Degraded _ -> Mechanism.Denied degraded_notice
  in
  { Mechanism.response; steps }

let protect ?config ?injector ?sink (m : Mechanism.t) =
  Mechanism.make
    ~name:(Printf.sprintf "guard(%s)" m.Mechanism.name)
    ~arity:m.Mechanism.arity
    (fun a -> reply_of_outcome (run ?config ?injector ?sink m a))

type breach = {
  input : Value.t array;
  reply : Mechanism.response;
  detail : string;
}

let check_fail_secure ~q (m : Mechanism.t) space =
  let check a =
    let reply = Mechanism.respond m a in
    match reply.Mechanism.response with
    | Mechanism.Denied _ -> None
    | Mechanism.Granted v -> (
        match (Program.run q a).Program.result with
        | Program.Value expected when Value.equal v expected -> None
        | expected ->
            Some
              {
                input = Array.copy a;
                reply = reply.Mechanism.response;
                detail =
                  Printf.sprintf "granted %s but Q's outcome is %s"
                    (Value.to_string v)
                    (match expected with
                    | Program.Value w -> Value.to_string w
                    | Program.Diverged -> "divergence"
                    | Program.Fault f -> "fault: " ^ f);
              })
    | (Mechanism.Hung | Mechanism.Failed _) as r ->
        Some
          {
            input = Array.copy a;
            reply = r;
            detail = "reply escaped E u F (mechanism not fail-secure)";
          }
  in
  Seq.fold_left
    (fun acc a -> match acc with Error _ -> acc | Ok () -> (
         match check a with None -> Ok () | Some b -> Error b))
    (Ok ()) (Space.enumerate space)

let sound_modulo_notices policy (m : Mechanism.t) space =
  (* Canonical policy image -> first granted value seen in that class. *)
  let grants : (Value.t, Value.t * Value.t array) Hashtbl.t = Hashtbl.create 64 in
  let check a =
    match (Mechanism.respond m a).Mechanism.response with
    | Mechanism.Granted v -> (
        let key = Policy.image policy a in
        match Hashtbl.find_opt grants key with
        | None ->
            Hashtbl.add grants key (v, Array.copy a);
            None
        | Some (v0, a0) when Value.equal v v0 -> ignore a0; None
        | Some (v0, a0) ->
            Some
              {
                input = Array.copy a;
                reply = Mechanism.Granted v;
                detail =
                  Printf.sprintf
                    "class %s granted both %s (at %s) and %s — grants split \
                     an I-equivalence class"
                    (Value.to_string key) (Value.to_string v0)
                    (String.concat ","
                       (Array.to_list (Array.map Value.to_string a0)))
                    (Value.to_string v);
              })
    | Mechanism.Denied _ | Mechanism.Hung | Mechanism.Failed _ ->
        (* Notices (and residual failures) are exactly what "modulo
           notices" quotients away; fail-secureness is the other check. *)
        None
  in
  Seq.fold_left
    (fun acc a -> match acc with Error _ -> acc | Ok () -> (
         match check a with None -> Ok () | Some b -> Error b))
    (Ok ()) (Space.enumerate space)
