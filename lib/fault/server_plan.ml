module Rng = Plan.Rng

type damage = Bad_magic | Bad_crc | Truncated | Foreign_version | Garbage

type fault =
  | Clean
  | Disconnect
  | Slowloris
  | Malformed of damage
  | Kill

type t = {
  seed : int;
  faults : fault array;
  burst : int;
  burst_at : int;
  journaled : bool;
}

let fault_free ~requests =
  if requests < 1 then invalid_arg "Server_plan.fault_free: requests < 1";
  {
    seed = -1;
    faults = Array.make requests Clean;
    burst = 0;
    burst_at = 0;
    journaled = true;
  }

let damage_of_int = function
  | 0 -> Bad_magic
  | 1 -> Bad_crc
  | 2 -> Truncated
  | 3 -> Foreign_version
  | _ -> Garbage

let generate ?(requests = 6) ~seed () =
  if requests < 3 then invalid_arg "Server_plan.generate: requests < 3";
  let st = Rng.create seed in
  let n = 3 + Rng.below st (requests - 2) in
  let faults =
    Array.init n (fun _ ->
        let r = Rng.below st 100 in
        if r < 40 then Clean
        else if r < 55 then Disconnect
        else if r < 70 then Slowloris
        else if r < 85 then Malformed (damage_of_int (Rng.below st 5))
        else Kill)
  in
  let burst = if Rng.below st 100 < 35 then 2 + Rng.below st 6 else 0 in
  let burst_at = Rng.below st n in
  let journaled = Rng.below st 100 < 50 in
  { seed; faults; burst; burst_at; journaled }

let is_fault_free t =
  t.burst = 0 && Array.for_all (function Clean -> true | _ -> false) t.faults

let kills t =
  Array.fold_left (fun n -> function Kill -> n + 1 | _ -> n) 0 t.faults

let overload t = t.burst

let damage_name = function
  | Bad_magic -> "bad-magic"
  | Bad_crc -> "bad-crc"
  | Truncated -> "truncated"
  | Foreign_version -> "foreign-version"
  | Garbage -> "garbage"

let fault_name = function
  | Clean -> "clean"
  | Disconnect -> "disconnect"
  | Slowloris -> "slowloris"
  | Malformed d -> Printf.sprintf "malformed(%s)" (damage_name d)
  | Kill -> "kill"

let describe t =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "%d requests%s:" (Array.length t.faults)
       (if t.journaled then " (journaled)" else ""));
  let any = ref false in
  Array.iteri
    (fun i f ->
      match f with
      | Clean -> ()
      | f ->
          any := true;
          Buffer.add_string b (Printf.sprintf " %s@%d" (fault_name f) i))
    t.faults;
  if not !any then Buffer.add_string b " (all clean)";
  if t.burst > 0 then
    Buffer.add_string b (Printf.sprintf "; burst(%d)@%d" t.burst t.burst_at);
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (describe t)
