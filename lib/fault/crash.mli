(** Crash-recovery chaos sweep: differential verification of the durable
    runner ({!Secpol_journal.Runner}).

    For every corpus entry, every [allow(J)] policy over its inputs and a
    spread of input vectors, the sweep runs the journaled monitor, kills it
    at every crash point [k < crash_points], and resumes from the medium.
    Two invariants are hunted, mirroring the fail-secure direction of the
    {!Sweep}:

    - on {e pristine} media (and on media with damage a real crash can
      cause — torn tails, lost journal suffixes), the resumed run must be
      {b bit-identical} — response {e and} step count — to the
      uninterrupted run;
    - on media with damage a crash {e cannot} cause (flipped bits in
      surviving records or the snapshot), recovery must either still
      reproduce the run or refuse with a typed error that
      {!Guard.reply_of_recovery} maps to the violation notice
      [Λ/recovery ∈ F] — never a divergent verdict, and above all never a
      grant the clean monitor did not issue.

    Tamper randomness is drawn from {!Plan.Rng} (splitmix64), so a failing
    sweep replays bit-for-bit from [base_seed]. *)

type totals = {
  cases : int;  (** (entry, policy, input) triples exercised *)
  crashes : int;  (** kill/resume cycles, pristine and tampered *)
  identical : int;  (** resumes bit-identical to the uninterrupted run *)
  complete_replays : int;
      (** resumes that found the verdict already journaled and re-delivered
          it without executing anything *)
  recovery_notices : int;
      (** tampered resumes refused and mapped to [Λ/recovery] *)
  tamper_survived : int;
      (** tampered resumes that nonetheless reproduced the clean run *)
  divergent : int;  (** resumes differing from the clean run — must be 0 *)
  fail_open : int;
      (** resumes granting a value the clean run did not — must be 0 *)
  journal_mismatch : int;
      (** journaled baselines differing from the plain monitor — must be 0 *)
}

type finding = {
  entry : string;
  policy : string;
  input : string;
  crash_point : int;  (** [-1] when no kill was involved *)
  tamper : string;
  detail : string;
}

type report = {
  base_seed : int;
  crash_points : int;
  mode : Secpol_taint.Dynamic.mode;
  totals : totals;
  metrics : Secpol_trace.Metrics.t;
      (** the registry the totals are read from; also carries the
          [replayed_records] histogram (journal records adopted per
          successful resume) *)
  findings : finding list;  (** capped at {!max_findings} *)
  ok : bool;
      (** [divergent = 0 && fail_open = 0 && journal_mismatch = 0] *)
  pool : Secpol_engine.Pool.stats;
      (** scheduling telemetry — absent from {!pp}/{!to_json}, which are
          byte-identical across [jobs] *)
}

val max_findings : int

val default_fuel : int
(** 2000 — enough for every terminating corpus run, small enough that the
    diverging entries journal bounded records before [Λ/fuel]. *)

val default_snapshot_every : int
(** 8 — low, so the sweep exercises many snapshot/journal-reset boundaries,
    including crashes landing between them. *)

val run :
  ?entries:Secpol_corpus.Paper_programs.entry list ->
  ?mode:Secpol_taint.Dynamic.mode ->
  ?crash_points:int ->
  ?base_seed:int ->
  ?fuel:int ->
  ?snapshot_every:int ->
  ?inputs_per_case:int ->
  ?sink:Secpol_trace.Sink.t ->
  ?jobs:int ->
  unit ->
  report
(** Defaults: the whole corpus, [Surveillance] monitors, 50 crash points,
    base seed 0, {!default_fuel}, {!default_snapshot_every}, 4 inputs
    spread across each entry's space, [jobs = 1]. Policies are all
    [2^arity] subsets of each entry's inputs. [sink] (default null)
    receives the journal lifecycle events of every baseline run and resume
    the sweep drives; with [jobs > 1] it is synchronized and interleaved.
    The engine runs one task per (entry, policy, input) case; each case's
    tamper RNG is seeded from its coordinates, so every output except
    [pool] is byte-identical whatever [jobs] is. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Secpol_staticflow.Lint.Json.value
val to_json_string : report -> string
