(** Differential chaos sweep: fail-open hunting over the whole corpus.

    For every paper program, every [allow(J)] policy over its inputs and
    every seed in a range, the sweep generates a fault {!Plan}, runs the
    surveillance monitor under the {!Guard} with the plan injected, and
    compares each reply against the clean (unfaulted) monitor on the same
    input. The invariant hunted for is {b zero fail-open outcomes}:

    - a guarded faulty run may grant {e only} the value the clean monitor
      grants on that input — any other grant is a fail-open breach;
    - a run whose fault points never fired must be {b bit-identical}
      (response and step count) to the clean run — injection is free when
      inactive;
    - everything else must surface as a violation notice ([Notice] or
      [Degraded]), never as a raw crash or hang.

    As a contrast, each faulty mechanism is also run {e unguarded} and its
    raw [Failed]/[Hung] replies counted — the failures the guard absorbs
    into [F]. *)

type totals = {
  runs : int;  (** guarded faulty runs classified *)
  plans : int;  (** (entry, policy, seed) triples swept *)
  grants : int;  (** guarded grants, all equal to the clean grant *)
  recovered : int;  (** grants on runs where at least one fault fired *)
  notices : int;
  degraded : int;
  fail_open : int;  (** guarded grants differing from the clean reply *)
  clean_mismatch : int;
      (** fault-free runs (no point fired, or guard with no injector) that
          were not bit-identical to the clean monitor *)
  unguarded_failures : int;
      (** raw [Failed]/[Hung] replies of the same faulty mechanisms run
          without the guard — what users would see without it *)
}

type finding = {
  entry : string;
  policy : string;
  seed : int;
  input : string;
  detail : string;
}

type report = {
  base_seed : int;
  seeds : int;
  mode : Secpol_taint.Dynamic.mode;
  totals : totals;
  metrics : Secpol_trace.Metrics.t;
      (** the registry the totals are read from; also carries the
          [guard_steps] histogram (steps per guarded run) *)
  findings : finding list;  (** capped at {!max_findings} *)
  ok : bool;  (** [fail_open = 0 && clean_mismatch = 0] *)
  pool : Secpol_engine.Pool.stats;
      (** scheduling telemetry (steals, idle probes) — deliberately absent
          from {!pp}/{!to_json}, which promise byte-identity across
          [jobs] *)
}

val max_findings : int

val seed_chunk : int
(** Seeds per engine task. The decomposition into tasks — one per (entry,
    policy, chunk of [seed_chunk] seeds) — is fixed, so reports and
    deterministic counters do not depend on [jobs]. *)

val run :
  ?entries:Secpol_corpus.Paper_programs.entry list ->
  ?mode:Secpol_taint.Dynamic.mode ->
  ?seeds:int ->
  ?base_seed:int ->
  ?horizon:int ->
  ?retries:int ->
  ?sink:Secpol_trace.Sink.t ->
  ?jobs:int ->
  unit ->
  report
(** Defaults: the whole corpus, [Surveillance] monitors, 100 seeds from
    base seed 0, fault-step horizon 24, 2 retries, [jobs = 1]. Policies
    are {e all} [2^arity] subsets of each entry's inputs. [sink] (default
    null) receives the {!Guard}'s retry/degradation events from every
    guarded run of the sweep; with [jobs > 1] it is wrapped with
    {!Secpol_trace.Sink.synchronized} and events interleave across tasks.
    [jobs] picks the engine pool width; every output except [pool] is
    byte-identical whatever its value. Clean baselines are fetched through
    the engine's exact-key verdict cache ([cache_hits]/[cache_misses]
    counters in [metrics]); faulty runs never touch the cache. *)

val pp : Format.formatter -> report -> unit

val to_json : report -> Secpol_staticflow.Lint.Json.value

val to_json_string : report -> string
