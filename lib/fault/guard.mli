(** The fail-secure supervisor.

    A Jones–Lipton protection mechanism is a total function into [E ∪ F]:
    output or violation notice, nothing else. A real monitor can crash,
    hang, or have its state corrupted — three ways to leave that codomain.
    The guard closes the gap: it runs a mechanism under a step-budget
    watchdog with bounded retry, and collapses every residual failure into
    the {!Degraded} outcome, which is itself a violation notice
    ({!degraded_notice} ∈ F). Supervised, a mechanism is total into
    [E ∪ F] {e by construction}, whatever its internals do.

    Fail-secure direction: failures map into [F], never into [E]. A fault
    can cost the user an answer they were entitled to (completeness loss),
    but can never hand them an answer the policy forbids (soundness loss).
    Hence the two checkable properties:

    - a guarded mechanism grants only the protected program's own outputs
      ({!check_fail_secure}), and
    - it stays sound {e modulo notices} — on each policy-equivalence class
      all granted values agree ({!sound_modulo_notices}). Full soundness
      (Denied vs Granted constant per class) cannot survive arbitrary
      step-targeted faults, since a fault point can hit the longer runs of
      a class and miss the shorter ones; but because the guarded
      mechanism's grants are a subset of a sound mechanism's grants, the
      values that do flow remain constant per class. *)

type fault_report = {
  mechanism : string;  (** name of the supervised mechanism *)
  attempts : int;  (** attempts made, including the first run *)
  symptoms : string list;  (** one per failed attempt, oldest first *)
  backoff_steps : int;  (** penalty steps charged by the backoff schedule *)
}

(** The supervisor's verdict. [Degraded] is {e not} a third kind of thing
    next to output and notice — {!reply_of_outcome} maps it to the
    violation notice {!degraded_notice}, keeping the supervised mechanism
    inside [E ∪ F]. It is kept distinct here so reports can say {e why}
    the notice was issued. *)
type outcome =
  | Output of Secpol_core.Value.t
  | Notice of string
  | Degraded of fault_report

type config = {
  retries : int;  (** failed attempts retried at most this many times *)
  backoff_base : int;
      (** attempt [i]'s failure charges [backoff_base * 2^(i-1)] penalty
          steps before the retry *)
  step_budget : int option;
      (** watchdog: an attempt whose reply reports more steps than this is
          treated as hung, whatever its response *)
  jitter : int option;
      (** [None] (the default) keeps the exact exponential schedule.
          [Some seed] jitters each retry penalty deterministically from a
          {!Plan.Rng} stream seeded here: attempt [i]'s penalty is drawn
          uniformly from [\[p, 2p)] for [p = backoff_base * 2^(i-1)], so a
          run's total backoff after [k] failed attempts lies in
          [\[B, 2B)] where [B = backoff_base * (2^k - 1)] is the unjittered
          budget. The stream restarts at every supervised invocation —
          schedules are replayable per seed — while distinct seeds (one per
          co-located shard enforcer) desynchronize simultaneous retry
          storms. *)
}

val default : config
(** [{ retries = 2; backoff_base = 4; step_budget = None; jitter = None }]. *)

val degraded_notice : string
(** The single canonical notice ("Λ/degraded") for all degraded outcomes.
    One notice for every failure mode on purpose: per-fault diagnostic
    notices would let the {e pattern} of failures split a policy class
    (the chatty-notice trap of Example 4). *)

val recovery_notice : string
(** The violation notice ("Λ/recovery") for unrecoverable journals: when
    crash recovery finds a snapshot or journal it cannot trust — checksum
    failure, foreign layout version, malformed state, missing program —
    the run is not re-executed and not guessed at; it is denied with this
    single notice. Λ/recovery ∈ F: a broken journal can cost an answer,
    never leak one. Like {!degraded_notice} it is deliberately
    uninformative, so the {e pattern} of recovery failures cannot split a
    policy class. *)

val reply_of_recovery :
  (Secpol_core.Mechanism.reply, 'e) result -> Secpol_core.Mechanism.reply
(** Collapse a recovery result into [E ∪ F]: [Ok reply] passes through,
    any [Error _] becomes [Denied recovery_notice] (0 steps — the run
    never resumed). *)

val run :
  ?config:config ->
  ?injector:Injector.t ->
  ?sink:Secpol_trace.Sink.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Value.t array ->
  outcome * int
(** One supervised invocation; the [int] is the total step count across
    attempts, backoff penalties included. If [injector] is given it is
    {!Injector.reset} first and advanced with {!Injector.next_attempt}
    before each retry, so transient faults clear on schedule. [sink]
    (default null) receives one guard event per observed symptom: a retry
    event for each attempt that will be retried, a degraded event when the
    supervisor gives up. [run] never raises: an exception escaping the
    mechanism is a symptom, not a crash. *)

val reply_of_outcome : outcome * int -> Secpol_core.Mechanism.reply
(** [Output v] ↦ [Granted v], [Notice f] ↦ [Denied f],
    [Degraded _] ↦ [Denied degraded_notice]. No [Hung], no [Failed]. *)

val protect :
  ?config:config ->
  ?injector:Injector.t ->
  ?sink:Secpol_trace.Sink.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Mechanism.t
(** The supervised mechanism, packaged: ["guard(M)"] with the same arity,
    replying via {!run} and {!reply_of_outcome}. *)

type breach = {
  input : Secpol_core.Value.t array;
  reply : Secpol_core.Mechanism.response;
  detail : string;
}

val check_fail_secure :
  q:Secpol_core.Program.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Space.t ->
  (unit, breach) result
(** Exhaustive over the space: every reply must be [Granted Q(a)] or
    [Denied _]. A [Hung] or [Failed] reply, or a grant of anything but the
    protected program's own output, is a breach. *)

val sound_modulo_notices :
  Secpol_core.Policy.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Space.t ->
  (unit, breach) result
(** Exhaustive over the space: within each policy-equivalence class, all
    [Granted] values must be equal (denials are ignored — "modulo
    notices"). *)
