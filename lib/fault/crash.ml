module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Json = Secpol_staticflow.Lint.Json
module Media = Secpol_journal.Media
module Frame = Secpol_journal.Frame
module Runner = Secpol_journal.Runner

(* The crash-recovery sweep: the durable runner's fail-secure proof by
   exhaustion. For every corpus entry, every allow(J) policy and a spread
   of inputs, run the journaled monitor, kill it at every crash point, and
   resume. The invariants hunted:

   - PRISTINE media: resume(kill_at(k)) must be BIT-IDENTICAL (response and
     step count) to the uninterrupted run, for every k. The journal is a
     perfect memory of the run.
   - TAMPERED media (torn tails, dropped record frames, flipped bits):
     resume either still reproduces the uninterrupted run bit-identically
     (damage that crashes legitimately cause — torn tails, lost suffixes —
     is survivable by re-execution) or refuses with a typed error that the
     supervisor maps to Λ/recovery. NEVER a third thing: a grant differing
     from the clean run is fail-open, any other difference is divergence.

   All randomness (chop lengths, flipped bit positions) comes from the same
   splitmix64 stream as Plan.generate, so a failing sweep replays
   bit-for-bit from its base seed. *)

type tamper = Pristine | Torn_tail | Drop_records | Flip_bit_journal | Flip_bit_snapshot

let tamper_name = function
  | Pristine -> "pristine"
  | Torn_tail -> "torn-tail"
  | Drop_records -> "drop-records"
  | Flip_bit_journal -> "flip-bit-journal"
  | Flip_bit_snapshot -> "flip-bit-snapshot"

type totals = {
  cases : int;  (** (entry, policy, input) triples exercised *)
  crashes : int;  (** kill/resume cycles, pristine and tampered *)
  identical : int;  (** resumes bit-identical to the uninterrupted run *)
  complete_replays : int;  (** resumes that found the verdict already journaled *)
  recovery_notices : int;  (** tampered resumes refused with Λ/recovery *)
  tamper_survived : int;  (** tampered resumes that still reproduced the run *)
  divergent : int;  (** resumes differing from the clean run — must be 0 *)
  fail_open : int;  (** resumes granting a value the clean run did not — must be 0 *)
  journal_mismatch : int;  (** journaled baseline differing from Dynamic.run — must be 0 *)
}

let zero_totals =
  {
    cases = 0;
    crashes = 0;
    identical = 0;
    complete_replays = 0;
    recovery_notices = 0;
    tamper_survived = 0;
    divergent = 0;
    fail_open = 0;
    journal_mismatch = 0;
  }

type finding = {
  entry : string;
  policy : string;
  input : string;
  crash_point : int;  (** [-1] when no kill was involved *)
  tamper : string;
  detail : string;
}

type report = {
  base_seed : int;
  crash_points : int;
  mode : Dynamic.mode;
  totals : totals;
  findings : finding list;
  ok : bool;
}

let max_findings = 20

let show_input a =
  "(" ^ String.concat "," (Array.to_list (Array.map Value.to_string a)) ^ ")"

let show_response = function
  | Mechanism.Granted v -> "granted " ^ Value.to_string v
  | Mechanism.Denied f -> "denied " ^ f
  | Mechanism.Hung -> "hung"
  | Mechanism.Failed m -> "failed: " ^ m

let show_reply (r : Mechanism.reply) =
  Printf.sprintf "%s (%d steps)" (show_response r.Mechanism.response)
    r.Mechanism.steps

let policies_of_arity arity =
  List.init (1 lsl arity) (fun mask -> Policy.allow_set (Iset.of_mask mask))

(* Up to [k] inputs spread across the enumerated space — endpoints first,
   so arity-0 spaces and singletons still contribute. *)
let spread k inputs =
  let n = List.length inputs in
  if n <= k then inputs
  else
    let arr = Array.of_list inputs in
    List.init k (fun i -> arr.(i * (n - 1) / (k - 1)))

(* --- media tampering ----------------------------------------------------- *)

let flip_bit rng s =
  if String.length s = 0 then s
  else
    let pos = Plan.Rng.below rng (String.length s) in
    let bit = Plan.Rng.below rng 8 in
    let by = Bytes.of_string s in
    Bytes.set by pos (Char.chr (Char.code (Bytes.get by pos) lxor (1 lsl bit)));
    Bytes.to_string by

let torn_tail rng s =
  let n = String.length s in
  if n = 0 then s
  else
    let chop = 1 + Plan.Rng.below rng (min n 24) in
    String.sub s 0 (n - chop)

let drop_last_record s =
  match Frame.scan s with
  | Error _ -> s
  | Ok { Frame.records; _ } -> (
      match records with
      | [] -> s
      | _ :: _ ->
          let keep = List.filteri (fun i _ -> i < List.length records - 1) records in
          let b = Buffer.create (String.length s) in
          List.iter (Frame.append b) keep;
          Buffer.contents b)

let tampered_media rng tamper (snapshot, journal) =
  match tamper with
  | Pristine -> (snapshot, journal)
  | Torn_tail -> (snapshot, torn_tail rng journal)
  | Drop_records -> (snapshot, drop_last_record journal)
  | Flip_bit_journal -> (snapshot, flip_bit rng journal)
  | Flip_bit_snapshot -> (flip_bit rng snapshot, journal)

(* Damage that removes journal suffix (torn tails, dropped frames) forces
   honest re-execution and must land back on the clean verdict; damage that
   rewrites surviving bytes (bit flips) must be caught and refused. *)
let survivable = function
  | Pristine | Torn_tail | Drop_records -> true
  | Flip_bit_journal | Flip_bit_snapshot -> false

(* --- the sweep ----------------------------------------------------------- *)

let default_fuel = 2000
let default_snapshot_every = 8

let run ?(entries = Paper.all) ?(mode = Dynamic.Surveillance)
    ?(crash_points = 50) ?(base_seed = 0) ?(fuel = default_fuel)
    ?(snapshot_every = default_snapshot_every) ?(inputs_per_case = 4) () =
  let totals = ref zero_totals in
  let findings = ref [] in
  let note f =
    if List.length !findings < max_findings then findings := f :: !findings
  in
  let bump f = totals := f !totals in
  let resolve (h : Runner.header) =
    match List.find_opt (fun (e : Paper.entry) -> e.Paper.name = h.Runner.program_ref) entries with
    | Some e -> Ok (Paper.graph e)
    | None -> Error (Printf.sprintf "no corpus entry named %s" h.Runner.program_ref)
  in
  List.iteri
    (fun ei (entry : Paper.entry) ->
      let g = Paper.graph entry in
      let all_inputs = List.of_seq (Space.enumerate entry.Paper.space) in
      let inputs = spread inputs_per_case all_inputs in
      List.iter
        (fun policy ->
          let pname = Policy.name policy in
          let cfg = Dynamic.config ~fuel ~mode policy in
          List.iteri
            (fun ii a ->
              let a = Array.of_list (Array.to_list a) in
              bump (fun t -> { t with cases = t.cases + 1 });
              let iname = show_input a in
              let fault ?(crash_point = -1) ?(tamper = "none") bump_field detail =
                bump bump_field;
                note { entry = entry.Paper.name; policy = pname; input = iname;
                       crash_point; tamper; detail }
              in
              (* The uninterrupted truth, twice over: the plain monitor and
                 the journaled baseline must already agree. *)
              let clean = Dynamic.run cfg g a in
              let base_media = Media.memory () in
              (match
                 Runner.run ~snapshot_every ~media:base_media
                   ~program_ref:entry.Paper.name cfg g a
               with
              | Runner.Killed _ -> assert false (* no kill_at *)
              | Runner.Completed r ->
                  if r <> clean then
                    fault
                      (fun t -> { t with journal_mismatch = t.journal_mismatch + 1 })
                      (Printf.sprintf
                         "journaled run %s differs from plain monitor %s"
                         (show_reply r) (show_reply clean)));
              (* Resuming a COMPLETED journal must re-deliver the verdict
                 without re-executing anything. *)
              (match Runner.resume ~resolve ~media:base_media () with
              | Ok res
                when res.Runner.was_complete && res.Runner.reply = clean ->
                  bump (fun t ->
                      { t with complete_replays = t.complete_replays + 1 })
              | Ok res ->
                  fault
                    (fun t -> { t with divergent = t.divergent + 1 })
                    (Printf.sprintf
                       "resume of completed journal gave %s (complete=%b), \
                        clean run was %s"
                       (show_reply res.Runner.reply) res.Runner.was_complete
                       (show_reply clean))
              | Error e ->
                  fault
                    (fun t -> { t with divergent = t.divergent + 1 })
                    ("resume of completed journal refused: "
                    ^ Runner.failure_message e));
              (* Kill at every crash point, then resume — pristine first,
                 then with seeded damage. *)
              let tampers =
                [ Pristine; Torn_tail; Drop_records; Flip_bit_journal;
                  Flip_bit_snapshot ]
              in
              let pmask =
                match Policy.allowed_indices policy with
                | Some s -> Iset.to_mask s
                | None -> 0
              in
              let rng =
                Plan.Rng.create (base_seed + (((ei * 131) + pmask) * 8191) + ii)
              in
              for k = 0 to crash_points - 1 do
                let media = Media.memory () in
                let outcome =
                  Runner.run ~kill_at:k ~snapshot_every ~media
                    ~program_ref:entry.Paper.name cfg g a
                in
                ignore outcome;
                match Media.load media with
                | None ->
                    fault ~crash_point:k
                      (fun t -> { t with divergent = t.divergent + 1 })
                      "killed run left no snapshot at all"
                | Some bytes ->
                    let tamper =
                      List.nth tampers (k mod List.length tampers)
                    in
                    let snapshot, journal = tampered_media rng tamper bytes in
                    let media' = Media.memory ~snapshot ~journal () in
                    bump (fun t -> { t with crashes = t.crashes + 1 });
                    let tname = tamper_name tamper in
                    (match Runner.resume ~resolve ~media:media' () with
                    | Ok res when res.Runner.reply = clean ->
                        bump (fun t ->
                            if tamper = Pristine then
                              { t with identical = t.identical + 1 }
                            else
                              {
                                t with
                                identical = t.identical + 1;
                                tamper_survived = t.tamper_survived + 1;
                              })
                    | Ok res -> (
                        match res.Runner.reply.Mechanism.response with
                        | Mechanism.Granted _ ->
                            fault ~crash_point:k ~tamper:tname
                              (fun t -> { t with fail_open = t.fail_open + 1 })
                              (Printf.sprintf
                                 "FAIL-OPEN: resume granted %s, clean run \
                                  was %s"
                                 (show_reply res.Runner.reply)
                                 (show_reply clean))
                        | _ ->
                            fault ~crash_point:k ~tamper:tname
                              (fun t -> { t with divergent = t.divergent + 1 })
                              (Printf.sprintf
                                 "resume gave %s, clean run was %s"
                                 (show_reply res.Runner.reply)
                                 (show_reply clean)))
                    | Error e ->
                        if survivable tamper then
                          fault ~crash_point:k ~tamper:tname
                            (fun t -> { t with divergent = t.divergent + 1 })
                            (Printf.sprintf
                               "crash damage should be survivable but \
                                resume refused: %s"
                               (Runner.failure_message e))
                        else begin
                          (* The supervisor's mapping: every refusal is the
                             single notice Λ/recovery, nothing chattier. *)
                          let reply = Guard.reply_of_recovery (Error e) in
                          if
                            reply.Mechanism.response
                            = Mechanism.Denied Guard.recovery_notice
                          then
                            bump (fun t ->
                                {
                                  t with
                                  recovery_notices = t.recovery_notices + 1;
                                })
                          else
                            fault ~crash_point:k ~tamper:tname
                              (fun t -> { t with divergent = t.divergent + 1 })
                              (Printf.sprintf
                                 "recovery refusal mapped to %s, not \
                                  Λ/recovery"
                                 (show_reply reply))
                        end)
              done)
            inputs)
        (policies_of_arity g.Secpol_flowgraph.Graph.arity))
    entries;
  let totals = !totals in
  {
    base_seed;
    crash_points;
    mode;
    totals;
    findings = List.rev !findings;
    ok =
      totals.divergent = 0 && totals.fail_open = 0
      && totals.journal_mismatch = 0;
  }

let pp ppf r =
  let t = r.totals in
  Format.fprintf ppf
    "crash-recovery sweep: %d cases, %d crash points each, mode %s@." t.cases
    r.crash_points
    (Dynamic.mode_name r.mode);
  Format.fprintf ppf "  kill/resume cycles %6d@." t.crashes;
  Format.fprintf ppf "  bit-identical      %6d  (%d after tampering)@."
    t.identical t.tamper_survived;
  Format.fprintf ppf "  complete replays   %6d@." t.complete_replays;
  Format.fprintf ppf "  recovery notices   %6d  (unrecoverable media; all map to Λ/recovery ∈ F)@."
    t.recovery_notices;
  Format.fprintf ppf "  journal mismatches %6d@." t.journal_mismatch;
  Format.fprintf ppf "  divergent          %6d@." t.divergent;
  Format.fprintf ppf "  fail-open          %6d@." t.fail_open;
  List.iter
    (fun f ->
      Format.fprintf ppf "  ! %s / %s / %s / crash@%d / %s: %s@." f.entry
        f.policy f.input f.crash_point f.tamper f.detail)
    r.findings;
  Format.fprintf ppf "verdict: %s@."
    (if r.ok then
       "durable (every resume bit-identical or Λ/recovery, never fail-open)"
     else "DIVERGENT OR FAIL-OPEN RECOVERY DETECTED")

let to_json r =
  let t = r.totals in
  Json.Obj
    [
      ("base_seed", Json.Int r.base_seed);
      ("crash_points", Json.Int r.crash_points);
      ("mode", Json.String (Dynamic.mode_name r.mode));
      ( "totals",
        Json.Obj
          [
            ("cases", Json.Int t.cases);
            ("crashes", Json.Int t.crashes);
            ("identical", Json.Int t.identical);
            ("complete_replays", Json.Int t.complete_replays);
            ("recovery_notices", Json.Int t.recovery_notices);
            ("tamper_survived", Json.Int t.tamper_survived);
            ("divergent", Json.Int t.divergent);
            ("fail_open", Json.Int t.fail_open);
            ("journal_mismatch", Json.Int t.journal_mismatch);
          ] );
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("entry", Json.String f.entry);
                   ("policy", Json.String f.policy);
                   ("input", Json.String f.input);
                   ("crash_point", Json.Int f.crash_point);
                   ("tamper", Json.String f.tamper);
                   ("detail", Json.String f.detail);
                 ])
             r.findings) );
      ("ok", Json.Bool r.ok);
    ]

let to_json_string r = Json.render (to_json r)
