module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Json = Secpol_staticflow.Lint.Json
module Media = Secpol_journal.Media
module Frame = Secpol_journal.Frame
module Runner = Secpol_journal.Runner
module Metrics = Secpol_trace.Metrics
module Sink = Secpol_trace.Sink
module Pool = Secpol_engine.Pool

(* The crash-recovery sweep: the durable runner's fail-secure proof by
   exhaustion. For every corpus entry, every allow(J) policy and a spread
   of inputs, run the journaled monitor, kill it at every crash point, and
   resume. The invariants hunted:

   - PRISTINE media: resume(kill_at(k)) must be BIT-IDENTICAL (response and
     step count) to the uninterrupted run, for every k. The journal is a
     perfect memory of the run.
   - TAMPERED media (torn tails, dropped record frames, flipped bits):
     resume either still reproduces the uninterrupted run bit-identically
     (damage that crashes legitimately cause — torn tails, lost suffixes —
     is survivable by re-execution) or refuses with a typed error that the
     supervisor maps to Λ/recovery. NEVER a third thing: a grant differing
     from the clean run is fail-open, any other difference is divergence.

   All randomness (chop lengths, flipped bit positions) comes from the same
   splitmix64 stream as Plan.generate, so a failing sweep replays
   bit-for-bit from its base seed. *)

type tamper = Pristine | Torn_tail | Drop_records | Flip_bit_journal | Flip_bit_snapshot

let tamper_name = function
  | Pristine -> "pristine"
  | Torn_tail -> "torn-tail"
  | Drop_records -> "drop-records"
  | Flip_bit_journal -> "flip-bit-journal"
  | Flip_bit_snapshot -> "flip-bit-snapshot"

type totals = {
  cases : int;  (** (entry, policy, input) triples exercised *)
  crashes : int;  (** kill/resume cycles, pristine and tampered *)
  identical : int;  (** resumes bit-identical to the uninterrupted run *)
  complete_replays : int;  (** resumes that found the verdict already journaled *)
  recovery_notices : int;  (** tampered resumes refused with Λ/recovery *)
  tamper_survived : int;  (** tampered resumes that still reproduced the run *)
  divergent : int;  (** resumes differing from the clean run — must be 0 *)
  fail_open : int;  (** resumes granting a value the clean run did not — must be 0 *)
  journal_mismatch : int;  (** journaled baseline differing from Dynamic.run — must be 0 *)
}

type finding = {
  entry : string;
  policy : string;
  input : string;
  crash_point : int;  (** [-1] when no kill was involved *)
  tamper : string;
  detail : string;
}

type report = {
  base_seed : int;
  crash_points : int;
  mode : Dynamic.mode;
  totals : totals;
  metrics : Metrics.t;
  findings : finding list;
  ok : bool;
  pool : Pool.stats;
}

let max_findings = 20

let show_input = Report.show_input
let show_reply = Report.show_reply
let policies_of_arity = Report.policies_of_arity

(* Up to [k] inputs spread across the enumerated space — endpoints first,
   so arity-0 spaces and singletons still contribute. *)
let spread k inputs =
  let n = List.length inputs in
  if n <= k then inputs
  else
    let arr = Array.of_list inputs in
    List.init k (fun i -> arr.(i * (n - 1) / (k - 1)))

(* --- media tampering ----------------------------------------------------- *)

let flip_bit rng s =
  if String.length s = 0 then s
  else
    let pos = Plan.Rng.below rng (String.length s) in
    let bit = Plan.Rng.below rng 8 in
    let by = Bytes.of_string s in
    Bytes.set by pos (Char.chr (Char.code (Bytes.get by pos) lxor (1 lsl bit)));
    Bytes.to_string by

let torn_tail rng s =
  let n = String.length s in
  if n = 0 then s
  else
    let chop = 1 + Plan.Rng.below rng (min n 24) in
    String.sub s 0 (n - chop)

let drop_last_record s =
  match Frame.scan s with
  | Error _ -> s
  | Ok { Frame.records; _ } -> (
      match records with
      | [] -> s
      | _ :: _ ->
          let keep = List.filteri (fun i _ -> i < List.length records - 1) records in
          let b = Buffer.create (String.length s) in
          List.iter (Frame.append b) keep;
          Buffer.contents b)

let tampered_media rng tamper (snapshot, journal) =
  match tamper with
  | Pristine -> (snapshot, journal)
  | Torn_tail -> (snapshot, torn_tail rng journal)
  | Drop_records -> (snapshot, drop_last_record journal)
  | Flip_bit_journal -> (snapshot, flip_bit rng journal)
  | Flip_bit_snapshot -> (flip_bit rng snapshot, journal)

(* Damage that removes journal suffix (torn tails, dropped frames) forces
   honest re-execution and must land back on the clean verdict; damage that
   rewrites surviving bytes (bit flips) must be caught and refused. *)
let survivable = function
  | Pristine | Torn_tail | Drop_records -> true
  | Flip_bit_journal | Flip_bit_snapshot -> false

(* --- the sweep ----------------------------------------------------------- *)

let default_fuel = 2000
let default_snapshot_every = 8

(* One engine task per (entry, policy, input) case. The per-case RNG seed
   is derived from the case's coordinates alone — never from anything
   another case did — so the damage stream, and with it the whole report,
   is identical whatever order (or domain) the cases run in. *)
type case = {
  k_ei : int;
  k_entry : Paper.entry;
  k_policy : Policy.t;
  k_ii : int;
  k_input : Value.t array;
}

type shard = { s_metrics : Metrics.t; s_findings : finding list }

let register_counters metrics =
  let c name = Metrics.counter metrics name in
  ( c "cases",
    c "crashes",
    c "identical",
    c "complete_replays",
    c "recovery_notices",
    c "tamper_survived",
    c "divergent",
    c "fail_open",
    c "journal_mismatch",
    Metrics.histogram metrics "replayed_records" )

let cases_of ~entries ~inputs_per_case =
  List.concat
    (List.mapi
       (fun ei (entry : Paper.entry) ->
         let g = Paper.graph entry in
         let all_inputs = List.of_seq (Space.enumerate entry.Paper.space) in
         let inputs = spread inputs_per_case all_inputs in
         List.concat_map
           (fun policy ->
             List.mapi
               (fun ii a ->
                 {
                   k_ei = ei;
                   k_entry = entry;
                   k_policy = policy;
                   k_ii = ii;
                   k_input = a;
                 })
               inputs)
           (policies_of_arity g.Secpol_flowgraph.Graph.arity))
       entries)

let run_case ~mode ~crash_points ~base_seed ~fuel ~snapshot_every ~sink
    ~resolve case =
  let metrics = Metrics.create () in
  let ( c_cases,
        c_crashes,
        c_identical,
        c_complete,
        c_recovery,
        c_survived,
        c_divergent,
        c_fail_open,
        c_journal_mismatch,
        h_replayed ) =
    register_counters metrics
  in
  let findings = ref [] in
  let n_found = ref 0 in
  let note f =
    if !n_found < max_findings then begin
      incr n_found;
      findings := f :: !findings
    end
  in
  let ei = case.k_ei and entry = case.k_entry in
  let policy = case.k_policy and ii = case.k_ii in
  let g = Paper.graph entry in
  let pname = Policy.name policy in
  let cfg = Dynamic.config ~fuel ~mode policy in
  (let a = Array.copy case.k_input in
   Metrics.incr c_cases;
              let iname = show_input a in
              let fault ?(crash_point = -1) ?(tamper = "none") counter detail =
                Metrics.incr counter;
                note { entry = entry.Paper.name; policy = pname; input = iname;
                       crash_point; tamper; detail }
              in
              (* The uninterrupted truth, twice over: the plain monitor and
                 the journaled baseline must already agree. *)
              let clean = Dynamic.run cfg g a in
              let base_media = Media.memory () in
              (match
                 Runner.run ~snapshot_every ~sink ~media:base_media
                   ~program_ref:entry.Paper.name cfg g a
               with
              | Runner.Killed _ -> assert false (* no kill_at *)
              | Runner.Completed r ->
                  if r <> clean then
                    fault c_journal_mismatch
                      (Printf.sprintf
                         "journaled run %s differs from plain monitor %s"
                         (show_reply r) (show_reply clean)));
              (* Resuming a COMPLETED journal must re-deliver the verdict
                 without re-executing anything. *)
              (match Runner.resume ~sink ~resolve ~media:base_media () with
              | Ok res
                when res.Runner.was_complete && res.Runner.reply = clean ->
                  Metrics.incr c_complete;
                  Metrics.observe h_replayed res.Runner.replayed
              | Ok res ->
                  fault c_divergent
                    (Printf.sprintf
                       "resume of completed journal gave %s (complete=%b), \
                        clean run was %s"
                       (show_reply res.Runner.reply) res.Runner.was_complete
                       (show_reply clean))
              | Error e ->
                  fault c_divergent
                    ("resume of completed journal refused: "
                    ^ Runner.failure_message e));
              (* Kill at every crash point, then resume — pristine first,
                 then with seeded damage. *)
              let tampers =
                [ Pristine; Torn_tail; Drop_records; Flip_bit_journal;
                  Flip_bit_snapshot ]
              in
              let pmask =
                match Policy.allowed_indices policy with
                | Some s -> Iset.to_mask s
                | None -> 0
              in
              let rng =
                Plan.Rng.create (base_seed + (((ei * 131) + pmask) * 8191) + ii)
              in
              for k = 0 to crash_points - 1 do
                let media = Media.memory () in
                let outcome =
                  Runner.run ~kill_at:k ~snapshot_every ~media
                    ~program_ref:entry.Paper.name cfg g a
                in
                ignore outcome;
                match Media.load media with
                | None ->
                    fault ~crash_point:k c_divergent
                      "killed run left no snapshot at all"
                | Some bytes ->
                    let tamper =
                      List.nth tampers (k mod List.length tampers)
                    in
                    let snapshot, journal = tampered_media rng tamper bytes in
                    let media' = Media.memory ~snapshot ~journal () in
                    Metrics.incr c_crashes;
                    let tname = tamper_name tamper in
                    (match Runner.resume ~sink ~resolve ~media:media' () with
                    | Ok res when res.Runner.reply = clean ->
                        Metrics.incr c_identical;
                        Metrics.observe h_replayed res.Runner.replayed;
                        if tamper <> Pristine then Metrics.incr c_survived
                    | Ok res -> (
                        match res.Runner.reply.Mechanism.response with
                        | Mechanism.Granted _ ->
                            fault ~crash_point:k ~tamper:tname c_fail_open
                              (Printf.sprintf
                                 "FAIL-OPEN: resume granted %s, clean run \
                                  was %s"
                                 (show_reply res.Runner.reply)
                                 (show_reply clean))
                        | _ ->
                            fault ~crash_point:k ~tamper:tname c_divergent
                              (Printf.sprintf
                                 "resume gave %s, clean run was %s"
                                 (show_reply res.Runner.reply)
                                 (show_reply clean)))
                    | Error e ->
                        if survivable tamper then
                          fault ~crash_point:k ~tamper:tname c_divergent
                            (Printf.sprintf
                               "crash damage should be survivable but \
                                resume refused: %s"
                               (Runner.failure_message e))
                        else begin
                          (* The supervisor's mapping: every refusal is the
                             single notice Λ/recovery, nothing chattier. *)
                          let reply = Guard.reply_of_recovery (Error e) in
                          if
                            reply.Mechanism.response
                            = Mechanism.Denied Guard.recovery_notice
                          then Metrics.incr c_recovery
                          else
                            fault ~crash_point:k ~tamper:tname c_divergent
                              (Printf.sprintf
                                 "recovery refusal mapped to %s, not \
                                  Λ/recovery"
                                 (show_reply reply))
                        end)
              done);
  { s_metrics = metrics; s_findings = List.rev !findings }

let run ?(entries = Paper.all) ?(mode = Dynamic.Surveillance)
    ?(crash_points = 50) ?(base_seed = 0) ?(fuel = default_fuel)
    ?(snapshot_every = default_snapshot_every) ?(inputs_per_case = 4)
    ?(sink = Sink.null) ?(jobs = 1) () =
  let sink = if jobs > 1 then Sink.synchronized sink else sink in
  let resolve (h : Runner.header) =
    match
      List.find_opt
        (fun (e : Paper.entry) -> e.Paper.name = h.Runner.program_ref)
        entries
    with
    | Some e -> Ok (Paper.graph e)
    | None ->
        Error (Printf.sprintf "no corpus entry named %s" h.Runner.program_ref)
  in
  let cases = Array.of_list (cases_of ~entries ~inputs_per_case) in
  let shards, pool =
    Pool.map ~jobs (Array.length cases) (fun i ->
        run_case ~mode ~crash_points ~base_seed ~fuel ~snapshot_every ~sink
          ~resolve cases.(i))
  in
  let metrics = Metrics.create () in
  let _ = register_counters metrics in
  let c_tasks = Metrics.counter metrics "engine_tasks" in
  Array.iter (fun s -> Metrics.merge ~into:metrics s.s_metrics) shards;
  Metrics.incr ~by:pool.Pool.task_count c_tasks;
  let findings =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | f :: rest -> f :: take (n - 1) rest
    in
    take max_findings
      (List.concat_map (fun s -> s.s_findings) (Array.to_list shards))
  in
  let v name = Metrics.counter_value metrics name in
  let totals =
    {
      cases = v "cases";
      crashes = v "crashes";
      identical = v "identical";
      complete_replays = v "complete_replays";
      recovery_notices = v "recovery_notices";
      tamper_survived = v "tamper_survived";
      divergent = v "divergent";
      fail_open = v "fail_open";
      journal_mismatch = v "journal_mismatch";
    }
  in
  {
    base_seed;
    crash_points;
    mode;
    totals;
    metrics;
    findings;
    ok =
      totals.divergent = 0 && totals.fail_open = 0
      && totals.journal_mismatch = 0;
    pool;
  }

let report_of r =
  let t = r.totals in
  {
    Report.title =
      Printf.sprintf
        "crash-recovery sweep: %d cases, %d crash points each, mode %s"
        t.cases r.crash_points
        (Dynamic.mode_name r.mode);
    params =
      [
        ("base_seed", Json.Int r.base_seed);
        ("crash_points", Json.Int r.crash_points);
        ("mode", Json.String (Dynamic.mode_name r.mode));
      ];
    metrics = r.metrics;
    rows =
      [
        ("crashes", "kill/resume cycles", None);
        ( "identical",
          "bit-identical",
          Some (Printf.sprintf "%d after tampering" t.tamper_survived) );
        ("complete_replays", "complete replays", None);
        ( "recovery_notices",
          "recovery notices",
          Some "unrecoverable media; all map to Λ/recovery ∈ F" );
        ("journal_mismatch", "journal mismatches", None);
        ("divergent", "divergent", None);
        ("fail_open", "fail-open", None);
      ];
    findings =
      List.map
        (fun f ->
          {
            Report.subject =
              [
                f.entry;
                f.policy;
                f.input;
                Printf.sprintf "crash@%d" f.crash_point;
                f.tamper;
              ];
            fields =
              [
                ("entry", Json.String f.entry);
                ("policy", Json.String f.policy);
                ("input", Json.String f.input);
                ("crash_point", Json.Int f.crash_point);
                ("tamper", Json.String f.tamper);
              ];
            detail = f.detail;
          })
        r.findings;
    ok = r.ok;
    verdict_ok =
      "durable (every resume bit-identical or Λ/recovery, never fail-open)";
    verdict_fail = "DIVERGENT OR FAIL-OPEN RECOVERY DETECTED";
  }

let pp ppf r = Report.pp ppf (report_of r)
let to_json r = Report.to_json (report_of r)
let to_json_string r = Report.to_json_string (report_of r)
