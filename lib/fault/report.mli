(** Shared rendering for the sweep reports.

    {!Sweep} and {!Crash} used to carry two nearly identical pp/to_json
    pairs plus private copies of the input/response formatters. Both now
    accumulate their aggregates in a {!Secpol_trace.Metrics} registry and
    describe their report declaratively as a {!t}; the one renderer here
    produces the text block and the JSON document for both. *)

module Json = Secpol_staticflow.Lint.Json
module Metrics = Secpol_trace.Metrics

(** {1 Shared formatters} *)

val show_input : Secpol_core.Value.t array -> string
(** [(v0,v1,...)]. *)

val show_response : Secpol_core.Mechanism.response -> string

val show_reply : Secpol_core.Mechanism.reply -> string
(** Response plus step count. *)

val policies_of_arity : int -> Secpol_core.Policy.t list
(** All [allow(J)] policies over [arity] inputs: one per subset of
    [{0..arity-1}], enumerated through the bitset representation. *)

(** {1 The declarative report} *)

type finding = {
  subject : string list;  (** joined with [" / "] in the text rendering *)
  fields : (string * Json.value) list;
      (** JSON object fields of the finding, [detail] appended last *)
  detail : string;
}

type t = {
  title : string;  (** first line of the text rendering *)
  params : (string * Json.value) list;
      (** leading fields of the JSON document (seeds, mode, ...) *)
  metrics : Metrics.t;  (** the sweep's aggregates *)
  rows : (string * string * string option) list;
      (** text rendering of the totals: counter name, display label,
          optional parenthetical note. Counters absent from [rows] still
          appear in the JSON totals (registration order). *)
  findings : finding list;
  ok : bool;
  verdict_ok : string;  (** verdict line when [ok] *)
  verdict_fail : string;  (** verdict line otherwise *)
}

val compare_finding : finding -> finding -> int
(** Total order on findings: JSON fields compared structurally, then
    [detail]. The stable key both renderers sort by. *)

val sort_findings : finding list -> finding list

val pp : Format.formatter -> t -> unit
(** Title, one aligned line per row, [  ! subject: detail] per finding
    ({b sorted} by {!compare_finding} — accumulation order never shows),
    then the verdict line. *)

val to_json : t -> Json.value
(** [params] fields, a ["totals"] object with every {e counter} in the
    registry (registration order), the ["findings"] list, the full
    ["metrics"] rendering (histograms included), and ["ok"]. *)

val to_json_string : t -> string
