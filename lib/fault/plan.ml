type kind = Crash | Corrupt_taint | Exhaust_fuel | Transient of int

type point = { at_step : int; kind : kind }

type t = { seed : int; points : point list }

(* splitmix64: deterministic across runs and platforms, unlike Stdlib.Random
   whose sequence is not pinned across OCaml versions. Seeds must replay
   bit-for-bit forever — a chaos failure that cannot be reproduced from its
   seed is worthless. *)
module Rng = struct
  type state = int64 ref

  let create seed = ref (Int64.of_int seed)

  let next (st : state) =
    st := Int64.add !st 0x9E3779B97F4A7C15L;
    let z = !st in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* Uniform-enough draw in [0, n): the modulo bias is irrelevant for fault
     scheduling. *)
  let below st n =
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next st) 1) (Int64.of_int n))
end

let none = { seed = -1; points = [] }

let normalize points =
  let sorted = List.sort (fun a b -> compare a.at_step b.at_step) points in
  (* One fault per step: the interpreters consult the hook once per box. *)
  let rec dedupe = function
    | a :: b :: rest when a.at_step = b.at_step -> dedupe (a :: rest)
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  dedupe sorted

let make points = { seed = -1; points = normalize points }

let generate ?(horizon = 24) ?(max_points = 3) ~seed () =
  let st = Rng.create seed in
  let n = 1 + Rng.below st (max max_points 1) in
  let point () =
    let at_step = Rng.below st (max horizon 1) in
    let kind =
      match Rng.below st 4 with
      | 0 -> Crash
      | 1 -> Corrupt_taint
      | 2 -> Exhaust_fuel
      | _ -> Transient (1 + Rng.below st 3)
    in
    { at_step; kind }
  in
  { seed; points = normalize (List.init n (fun _ -> point ())) }

let worst_transient t =
  List.fold_left
    (fun acc p -> match p.kind with Transient k -> max acc k | _ -> acc)
    0 t.points

let is_transient_only t =
  t.points <> []
  && List.for_all (fun p -> match p.kind with Transient _ -> true | _ -> false) t.points

let kind_name = function
  | Crash -> "crash"
  | Corrupt_taint -> "corrupt-taint"
  | Exhaust_fuel -> "exhaust-fuel"
  | Transient k -> Printf.sprintf "transient(%d)" k

let describe t =
  if t.points = [] then "(no faults)"
  else
    String.concat " "
      (List.map (fun p -> Printf.sprintf "%s@%d" (kind_name p.kind) p.at_step) t.points)

let pp ppf t = Format.pp_print_string ppf (describe t)
