(** Turning a {!Plan} into a live interpreter hook.

    An injector owns the mutable state a fault plan needs at run time: which
    retry attempt is in progress (so [Transient k] faults can clear from
    attempt [k+1] on) and how many faults have actually fired. {!Guard}
    calls {!reset} before a supervised run and {!next_attempt} before each
    retry; the sweep inspects {!fired_total} afterwards to tell a genuinely
    faulted run from one whose fault points were never reached. *)

type t

val create : Plan.t -> t
(** Fresh injector on attempt 1 with zeroed counters. *)

val plan : t -> Plan.t

val reset : t -> unit
(** Back to attempt 1, counters zeroed — call before each supervised run so
    one injector can serve many inputs of a sweep. *)

val next_attempt : t -> unit
(** Advance to the next retry attempt; the per-attempt fired counter is
    zeroed, the total is kept. *)

val attempt : t -> int
(** 1-based index of the attempt in progress. *)

val fired_this_attempt : t -> int

val fired_total : t -> int
(** Faults fired since the last {!reset}, across all attempts. [0] means
    the plan never interfered with this run — the supervised reply must
    then be bit-identical to an unfaulted one. *)

val hook : t -> Secpol_flowgraph.Hook.t
(** The hook to thread into {!Secpol_taint.Dynamic.config} (or
    {!Secpol_flowgraph.Interp.run_graph}): at each executed box it fires
    the plan's fault point for that step, if any is active on the current
    attempt. [Transient k] points are active on attempts [1..k] only. *)
