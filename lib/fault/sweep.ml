module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Json = Secpol_staticflow.Lint.Json
module Metrics = Secpol_trace.Metrics
module Sink = Secpol_trace.Sink

type totals = {
  runs : int;
  plans : int;
  grants : int;
  recovered : int;
  notices : int;
  degraded : int;
  fail_open : int;
  clean_mismatch : int;
  unguarded_failures : int;
}

type finding = {
  entry : string;
  policy : string;
  seed : int;
  input : string;
  detail : string;
}

type report = {
  base_seed : int;
  seeds : int;
  mode : Dynamic.mode;
  totals : totals;
  metrics : Metrics.t;
  findings : finding list;
  ok : bool;
}

let max_findings = 20

let show_input = Report.show_input
let show_response = Report.show_response
let policies_of_arity = Report.policies_of_arity

let run ?(entries = Paper.all) ?(mode = Dynamic.Surveillance) ?(seeds = 100)
    ?(base_seed = 0) ?(horizon = 24) ?(retries = 2) ?(sink = Sink.null) () =
  let metrics = Metrics.create () in
  (* Registered up front so renderings keep this order whatever fires
     first. *)
  let c_runs = Metrics.counter metrics "runs" in
  let c_plans = Metrics.counter metrics "plans" in
  let c_grants = Metrics.counter metrics "grants" in
  let c_recovered = Metrics.counter metrics "recovered" in
  let c_notices = Metrics.counter metrics "notices" in
  let c_degraded = Metrics.counter metrics "degraded" in
  let c_fail_open = Metrics.counter metrics "fail_open" in
  let c_clean_mismatch = Metrics.counter metrics "clean_mismatch" in
  let c_unguarded = Metrics.counter metrics "unguarded_failures" in
  let h_steps = Metrics.histogram metrics "guard_steps" in
  let findings = ref [] in
  let note f = if List.length !findings < max_findings then findings := f :: !findings in
  let config = { Guard.default with Guard.retries } in
  List.iter
    (fun (entry : Paper.entry) ->
      let g = Paper.graph entry in
      let inputs = List.of_seq (Space.enumerate entry.Paper.space) in
      List.iter
        (fun policy ->
          let pname = Policy.name policy in
          let clean_mech = Dynamic.mechanism_of ~mode policy g in
          let clean = List.map (fun a -> (a, Mechanism.respond clean_mech a)) inputs in
          (* Fault-free guarded pass: with no injector the guard must be a
             bit-identical wrapper. *)
          List.iter
            (fun (a, (c : Mechanism.reply)) ->
              let r = Guard.reply_of_outcome (Guard.run ~config ~sink clean_mech a) in
              if r <> c then begin
                Metrics.incr c_clean_mismatch;
                note
                  {
                    entry = entry.Paper.name;
                    policy = pname;
                    seed = -1;
                    input = show_input a;
                    detail =
                      Printf.sprintf
                        "guard without faults not bit-identical: %s (%d steps) \
                         vs clean %s (%d steps)"
                        (show_response r.Mechanism.response)
                        r.Mechanism.steps
                        (show_response c.Mechanism.response)
                        c.Mechanism.steps;
                  }
              end)
            clean;
          for seed = base_seed to base_seed + seeds - 1 do
            Metrics.incr c_plans;
            let plan = Plan.generate ~horizon ~seed () in
            let injector = Injector.create plan in
            let faulty =
              Dynamic.mechanism_of ~hook:(Injector.hook injector) ~mode policy g
            in
            List.iter
              (fun (a, (c : Mechanism.reply)) ->
                let fault counter detail =
                  note
                    {
                      entry = entry.Paper.name;
                      policy = pname;
                      seed;
                      input = show_input a;
                      detail =
                        Printf.sprintf "[plan %s] %s" (Plan.describe plan) detail;
                    };
                  Metrics.incr counter
                in
                (* Contrast pass: same faulty monitor, no supervisor. *)
                Injector.reset injector;
                (match (Mechanism.respond faulty a).Mechanism.response with
                | Mechanism.Failed _ | Mechanism.Hung -> Metrics.incr c_unguarded
                | Mechanism.Granted _ | Mechanism.Denied _ -> ());
                (* Guarded pass. *)
                let outcome, steps = Guard.run ~config ~injector ~sink faulty a in
                Metrics.incr c_runs;
                Metrics.observe h_steps steps;
                let fired = Injector.fired_total injector > 0 in
                (match outcome with
                | Guard.Output v -> (
                    match c.Mechanism.response with
                    | Mechanism.Granted w when Value.equal v w ->
                        Metrics.incr c_grants;
                        if fired then Metrics.incr c_recovered
                    | _ ->
                        fault c_fail_open
                          (Printf.sprintf
                             "FAIL-OPEN: guarded run granted %s but clean \
                              monitor replied %s"
                             (Value.to_string v)
                             (show_response c.Mechanism.response)))
                | Guard.Notice _ -> Metrics.incr c_notices
                | Guard.Degraded _ -> Metrics.incr c_degraded);
                if not fired then begin
                  let r = Guard.reply_of_outcome (outcome, steps) in
                  if r <> c then
                    fault c_clean_mismatch
                      (Printf.sprintf
                         "no fault fired yet reply differs: %s (%d steps) vs \
                          clean %s (%d steps)"
                         (show_response r.Mechanism.response)
                         r.Mechanism.steps
                         (show_response c.Mechanism.response)
                         c.Mechanism.steps)
                end)
              clean
          done)
        (policies_of_arity g.Secpol_flowgraph.Graph.arity))
    entries;
  let v name = Metrics.counter_value metrics name in
  let totals =
    {
      runs = v "runs";
      plans = v "plans";
      grants = v "grants";
      recovered = v "recovered";
      notices = v "notices";
      degraded = v "degraded";
      fail_open = v "fail_open";
      clean_mismatch = v "clean_mismatch";
      unguarded_failures = v "unguarded_failures";
    }
  in
  {
    base_seed;
    seeds;
    mode;
    totals;
    metrics;
    findings = List.rev !findings;
    ok = totals.fail_open = 0 && totals.clean_mismatch = 0;
  }

let report_of r =
  let t = r.totals in
  {
    Report.title =
      Printf.sprintf "chaos sweep: %d fault plans (%d seeds from %d), mode %s"
        t.plans r.seeds r.base_seed
        (Dynamic.mode_name r.mode);
    params =
      [
        ("base_seed", Json.Int r.base_seed);
        ("seeds", Json.Int r.seeds);
        ("mode", Json.String (Dynamic.mode_name r.mode));
      ];
    metrics = r.metrics;
    rows =
      [
        ("runs", "guarded runs", None);
        ( "grants",
          "grants",
          Some (Printf.sprintf "%d recovered after faults fired" t.recovered) );
        ("notices", "notices", None);
        ("degraded", "degraded", None);
        ( "unguarded_failures",
          "unguarded crashes",
          Some "absorbed into F by the guard" );
        ("fail_open", "fail-open", None);
        ("clean_mismatch", "clean mismatches", None);
      ];
    findings =
      List.map
        (fun f ->
          {
            Report.subject =
              [ f.entry; f.policy; "seed " ^ string_of_int f.seed; f.input ];
            fields =
              [
                ("entry", Json.String f.entry);
                ("policy", Json.String f.policy);
                ("seed", Json.Int f.seed);
                ("input", Json.String f.input);
              ];
            detail = f.detail;
          })
        r.findings;
    ok = r.ok;
    verdict_ok = "fail-secure (no fail-open outcome, clean runs bit-identical)";
    verdict_fail = "FAIL-OPEN OR DIVERGENCE FROM CLEAN RUNS DETECTED";
  }

let pp ppf r = Report.pp ppf (report_of r)
let to_json r = Report.to_json (report_of r)
let to_json_string r = Report.to_json_string (report_of r)
