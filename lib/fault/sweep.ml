module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Json = Secpol_staticflow.Lint.Json

type totals = {
  runs : int;
  plans : int;
  grants : int;
  recovered : int;
  notices : int;
  degraded : int;
  fail_open : int;
  clean_mismatch : int;
  unguarded_failures : int;
}

type finding = {
  entry : string;
  policy : string;
  seed : int;
  input : string;
  detail : string;
}

type report = {
  base_seed : int;
  seeds : int;
  mode : Dynamic.mode;
  totals : totals;
  findings : finding list;
  ok : bool;
}

let max_findings = 20

let zero_totals =
  {
    runs = 0;
    plans = 0;
    grants = 0;
    recovered = 0;
    notices = 0;
    degraded = 0;
    fail_open = 0;
    clean_mismatch = 0;
    unguarded_failures = 0;
  }

let show_input a =
  "(" ^ String.concat "," (Array.to_list (Array.map Value.to_string a)) ^ ")"

let show_response = function
  | Mechanism.Granted v -> "granted " ^ Value.to_string v
  | Mechanism.Denied f -> "denied " ^ f
  | Mechanism.Hung -> "hung"
  | Mechanism.Failed m -> "failed: " ^ m

(* All allow(J) policies over an entry's inputs: one per subset of
   {0..arity-1}, enumerated through the bitset representation. *)
let policies_of_arity arity =
  List.init (1 lsl arity) (fun mask -> Policy.allow_set (Iset.of_mask mask))

let run ?(entries = Paper.all) ?(mode = Dynamic.Surveillance) ?(seeds = 100)
    ?(base_seed = 0) ?(horizon = 24) ?(retries = 2) () =
  let totals = ref zero_totals in
  let findings = ref [] in
  let note f = if List.length !findings < max_findings then findings := f :: !findings in
  let config = { Guard.default with Guard.retries } in
  List.iter
    (fun (entry : Paper.entry) ->
      let g = Paper.graph entry in
      let inputs = List.of_seq (Space.enumerate entry.Paper.space) in
      List.iter
        (fun policy ->
          let pname = Policy.name policy in
          let clean_mech = Dynamic.mechanism_of ~mode policy g in
          let clean = List.map (fun a -> (a, Mechanism.respond clean_mech a)) inputs in
          (* Fault-free guarded pass: with no injector the guard must be a
             bit-identical wrapper. *)
          List.iter
            (fun (a, (c : Mechanism.reply)) ->
              let r = Guard.reply_of_outcome (Guard.run ~config clean_mech a) in
              if r <> c then begin
                totals := { !totals with clean_mismatch = !totals.clean_mismatch + 1 };
                note
                  {
                    entry = entry.Paper.name;
                    policy = pname;
                    seed = -1;
                    input = show_input a;
                    detail =
                      Printf.sprintf
                        "guard without faults not bit-identical: %s (%d steps) \
                         vs clean %s (%d steps)"
                        (show_response r.Mechanism.response)
                        r.Mechanism.steps
                        (show_response c.Mechanism.response)
                        c.Mechanism.steps;
                  }
              end)
            clean;
          for seed = base_seed to base_seed + seeds - 1 do
            totals := { !totals with plans = !totals.plans + 1 };
            let plan = Plan.generate ~horizon ~seed () in
            let injector = Injector.create plan in
            let faulty =
              Dynamic.mechanism_of ~hook:(Injector.hook injector) ~mode policy g
            in
            List.iter
              (fun (a, (c : Mechanism.reply)) ->
                let fault f detail =
                  note
                    {
                      entry = entry.Paper.name;
                      policy = pname;
                      seed;
                      input = show_input a;
                      detail =
                        Printf.sprintf "[plan %s] %s" (Plan.describe plan) detail;
                    };
                  totals := f !totals
                in
                (* Contrast pass: same faulty monitor, no supervisor. *)
                Injector.reset injector;
                (match (Mechanism.respond faulty a).Mechanism.response with
                | Mechanism.Failed _ | Mechanism.Hung ->
                    totals :=
                      { !totals with unguarded_failures = !totals.unguarded_failures + 1 }
                | Mechanism.Granted _ | Mechanism.Denied _ -> ());
                (* Guarded pass. *)
                let outcome, steps = Guard.run ~config ~injector faulty a in
                totals := { !totals with runs = !totals.runs + 1 };
                let fired = Injector.fired_total injector > 0 in
                (match outcome with
                | Guard.Output v -> (
                    match c.Mechanism.response with
                    | Mechanism.Granted w when Value.equal v w ->
                        totals :=
                          {
                            !totals with
                            grants = !totals.grants + 1;
                            recovered = (!totals.recovered + if fired then 1 else 0);
                          }
                    | _ ->
                        fault
                          (fun t -> { t with fail_open = t.fail_open + 1 })
                          (Printf.sprintf
                             "FAIL-OPEN: guarded run granted %s but clean \
                              monitor replied %s"
                             (Value.to_string v)
                             (show_response c.Mechanism.response)))
                | Guard.Notice _ ->
                    totals := { !totals with notices = !totals.notices + 1 }
                | Guard.Degraded _ ->
                    totals := { !totals with degraded = !totals.degraded + 1 });
                if not fired then begin
                  let r = Guard.reply_of_outcome (outcome, steps) in
                  if r <> c then
                    fault
                      (fun t -> { t with clean_mismatch = t.clean_mismatch + 1 })
                      (Printf.sprintf
                         "no fault fired yet reply differs: %s (%d steps) vs \
                          clean %s (%d steps)"
                         (show_response r.Mechanism.response)
                         r.Mechanism.steps
                         (show_response c.Mechanism.response)
                         c.Mechanism.steps)
                end)
              clean
          done)
        (policies_of_arity g.Secpol_flowgraph.Graph.arity))
    entries;
  let totals = !totals in
  {
    base_seed;
    seeds;
    mode;
    totals;
    findings = List.rev !findings;
    ok = totals.fail_open = 0 && totals.clean_mismatch = 0;
  }

let pp ppf r =
  let t = r.totals in
  Format.fprintf ppf "chaos sweep: %d fault plans (%d seeds from %d), mode %s@."
    t.plans r.seeds r.base_seed
    (Dynamic.mode_name r.mode);
  Format.fprintf ppf "  guarded runs      %6d@." t.runs;
  Format.fprintf ppf "  grants            %6d  (%d recovered after faults fired)@."
    t.grants t.recovered;
  Format.fprintf ppf "  notices           %6d@." t.notices;
  Format.fprintf ppf "  degraded          %6d@." t.degraded;
  Format.fprintf ppf "  unguarded crashes %6d  (absorbed into F by the guard)@."
    t.unguarded_failures;
  Format.fprintf ppf "  fail-open         %6d@." t.fail_open;
  Format.fprintf ppf "  clean mismatches  %6d@." t.clean_mismatch;
  List.iter
    (fun f ->
      Format.fprintf ppf "  ! %s / %s / seed %d / %s: %s@." f.entry f.policy
        f.seed f.input f.detail)
    r.findings;
  Format.fprintf ppf "verdict: %s@."
    (if r.ok then "fail-secure (no fail-open outcome, clean runs bit-identical)"
     else "FAIL-OPEN OR DIVERGENCE FROM CLEAN RUNS DETECTED")

let to_json r =
  let t = r.totals in
  Json.Obj
    [
      ("base_seed", Json.Int r.base_seed);
      ("seeds", Json.Int r.seeds);
      ("mode", Json.String (Dynamic.mode_name r.mode));
      ( "totals",
        Json.Obj
          [
            ("runs", Json.Int t.runs);
            ("plans", Json.Int t.plans);
            ("grants", Json.Int t.grants);
            ("recovered", Json.Int t.recovered);
            ("notices", Json.Int t.notices);
            ("degraded", Json.Int t.degraded);
            ("fail_open", Json.Int t.fail_open);
            ("clean_mismatch", Json.Int t.clean_mismatch);
            ("unguarded_failures", Json.Int t.unguarded_failures);
          ] );
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("entry", Json.String f.entry);
                   ("policy", Json.String f.policy);
                   ("seed", Json.Int f.seed);
                   ("input", Json.String f.input);
                   ("detail", Json.String f.detail);
                 ])
             r.findings) );
      ("ok", Json.Bool r.ok);
    ]

let to_json_string r = Json.render (to_json r)
