module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Dynamic = Secpol_taint.Dynamic
module Paper = Secpol_corpus.Paper_programs
module Json = Secpol_staticflow.Lint.Json
module Metrics = Secpol_trace.Metrics
module Sink = Secpol_trace.Sink
module Pool = Secpol_engine.Pool
module Cache = Secpol_engine.Cache
module Memo = Secpol_engine.Memo
module Runner = Secpol_journal.Runner

type totals = {
  runs : int;
  plans : int;
  grants : int;
  recovered : int;
  notices : int;
  degraded : int;
  fail_open : int;
  clean_mismatch : int;
  unguarded_failures : int;
}

type finding = {
  entry : string;
  policy : string;
  seed : int;
  input : string;
  detail : string;
}

type report = {
  base_seed : int;
  seeds : int;
  mode : Dynamic.mode;
  totals : totals;
  metrics : Metrics.t;
  findings : finding list;
  ok : bool;
  pool : Pool.stats;
}

let max_findings = 20

let show_input = Report.show_input
let show_response = Report.show_response
let policies_of_arity = Report.policies_of_arity

(* The sweep decomposes into a fixed task list — one task per (entry,
   policy, chunk of [seed_chunk] seeds) — that does NOT depend on [jobs]:
   the same tasks run whatever the pool width, their shard registries and
   findings are merged in task order, so the report is byte-identical at
   any [--jobs]. The first chunk of each (entry, policy) also carries the
   fault-free guarded pass the sequential sweep ran before its seed loop. *)
let seed_chunk = 25

type task = {
  t_entry : Paper.entry;
  t_policy : Policy.t;
  t_seed_lo : int;
  t_seed_count : int;
  t_first : bool;
}

type shard = { s_metrics : Metrics.t; s_findings : finding list }

let register_counters metrics =
  (* Registered up front so renderings keep this order whatever fires
     first. *)
  let c name = Metrics.counter metrics name in
  ( c "runs",
    c "plans",
    c "grants",
    c "recovered",
    c "notices",
    c "degraded",
    c "fail_open",
    c "clean_mismatch",
    c "unguarded_failures",
    Metrics.histogram metrics "guard_steps" )

let run_task ~mode ~horizon ~config ~sink ~cache t =
  let metrics = Metrics.create () in
  let ( c_runs,
        c_plans,
        c_grants,
        c_recovered,
        c_notices,
        c_degraded,
        c_fail_open,
        c_clean_mismatch,
        c_unguarded,
        h_steps ) =
    register_counters metrics
  in
  let findings = ref [] in
  let n_found = ref 0 in
  let note f =
    if !n_found < max_findings then begin
      incr n_found;
      findings := f :: !findings
    end
  in
  let entry = t.t_entry and policy = t.t_policy in
  let g = Paper.graph entry in
  let inputs = List.of_seq (Space.enumerate entry.Paper.space) in
  let pname = Policy.name policy in
  let clean_mech = Dynamic.mechanism (Dynamic.config ~mode policy) g in
  (* Clean baselines through the exact-key cache: any chunk of this
     (entry, policy) may compute them, every other chunk reuses them. The
     key is the full input vector, so this is sound for any mechanism —
     no soundness assumption needed for baselines. *)
  let cached_clean =
    Memo.exact ~cache
      ~digest:(Runner.graph_hash g)
      ~tag:(Printf.sprintf "chaos-clean|%s|%s" (Dynamic.mode_name mode) pname)
      clean_mech
  in
  let clean =
    List.map (fun a -> (a, Mechanism.respond cached_clean a)) inputs
  in
  if t.t_first then
    (* Fault-free guarded pass: with no injector the guard must be a
       bit-identical wrapper. *)
    List.iter
      (fun (a, (c : Mechanism.reply)) ->
        let r = Guard.reply_of_outcome (Guard.run ~config ~sink clean_mech a) in
        if r <> c then begin
          Metrics.incr c_clean_mismatch;
          note
            {
              entry = entry.Paper.name;
              policy = pname;
              seed = -1;
              input = show_input a;
              detail =
                Printf.sprintf
                  "guard without faults not bit-identical: %s (%d steps) vs \
                   clean %s (%d steps)"
                  (show_response r.Mechanism.response)
                  r.Mechanism.steps
                  (show_response c.Mechanism.response)
                  c.Mechanism.steps;
            }
        end)
      clean;
  for seed = t.t_seed_lo to t.t_seed_lo + t.t_seed_count - 1 do
    Metrics.incr c_plans;
    let plan = Plan.generate ~horizon ~seed () in
    let injector = Injector.create plan in
    let faulty =
      Dynamic.mechanism
        (Dynamic.config ~hook:(Injector.hook injector) ~mode policy)
        g
    in
    List.iter
      (fun (a, (c : Mechanism.reply)) ->
        let fault counter detail =
          note
            {
              entry = entry.Paper.name;
              policy = pname;
              seed;
              input = show_input a;
              detail = Printf.sprintf "[plan %s] %s" (Plan.describe plan) detail;
            };
          Metrics.incr counter
        in
        (* Contrast pass: same faulty monitor, no supervisor. Raw-Q with
           live fault injection is exactly the unsound case the verdict
           cache must never serve — it bypasses the cache entirely. *)
        Injector.reset injector;
        (match (Mechanism.respond faulty a).Mechanism.response with
        | Mechanism.Failed _ | Mechanism.Hung -> Metrics.incr c_unguarded
        | Mechanism.Granted _ | Mechanism.Denied _ -> ());
        (* Guarded pass. *)
        let outcome, steps = Guard.run ~config ~injector ~sink faulty a in
        Metrics.incr c_runs;
        Metrics.observe h_steps steps;
        let fired = Injector.fired_total injector > 0 in
        (match outcome with
        | Guard.Output v -> (
            match c.Mechanism.response with
            | Mechanism.Granted w when Value.equal v w ->
                Metrics.incr c_grants;
                if fired then Metrics.incr c_recovered
            | _ ->
                fault c_fail_open
                  (Printf.sprintf
                     "FAIL-OPEN: guarded run granted %s but clean monitor \
                      replied %s"
                     (Value.to_string v)
                     (show_response c.Mechanism.response)))
        | Guard.Notice _ -> Metrics.incr c_notices
        | Guard.Degraded _ -> Metrics.incr c_degraded);
        if not fired then begin
          let r = Guard.reply_of_outcome (outcome, steps) in
          if r <> c then
            fault c_clean_mismatch
              (Printf.sprintf
                 "no fault fired yet reply differs: %s (%d steps) vs clean \
                  %s (%d steps)"
                 (show_response r.Mechanism.response)
                 r.Mechanism.steps
                 (show_response c.Mechanism.response)
                 c.Mechanism.steps)
        end)
      clean
  done;
  { s_metrics = metrics; s_findings = List.rev !findings }

let tasks_of ~entries ~seeds ~base_seed =
  List.concat_map
    (fun (entry : Paper.entry) ->
      let g = Paper.graph entry in
      List.concat_map
        (fun policy ->
          let rec chunks lo acc =
            if lo >= base_seed + seeds then List.rev acc
            else
              let count = min seed_chunk (base_seed + seeds - lo) in
              chunks (lo + count)
                ({
                   t_entry = entry;
                   t_policy = policy;
                   t_seed_lo = lo;
                   t_seed_count = count;
                   t_first = lo = base_seed;
                 }
                :: acc)
          in
          if seeds <= 0 then
            (* No seeds still means the fault-free guarded pass. *)
            [
              {
                t_entry = entry;
                t_policy = policy;
                t_seed_lo = base_seed;
                t_seed_count = 0;
                t_first = true;
              };
            ]
          else chunks base_seed [])
        (policies_of_arity g.Secpol_flowgraph.Graph.arity))
    entries

let run ?(entries = Paper.all) ?(mode = Dynamic.Surveillance) ?(seeds = 100)
    ?(base_seed = 0) ?(horizon = 24) ?(retries = 2) ?(sink = Sink.null)
    ?(jobs = 1) () =
  let sink = if jobs > 1 then Sink.synchronized sink else sink in
  let config = { Guard.default with Guard.retries } in
  let cache = Cache.create () in
  let tasks = Array.of_list (tasks_of ~entries ~seeds ~base_seed) in
  let shards, pool =
    Pool.map ~jobs (Array.length tasks) (fun i ->
        run_task ~mode ~horizon ~config ~sink ~cache tasks.(i))
  in
  let metrics = Metrics.create () in
  let _ = register_counters metrics in
  let c_tasks = Metrics.counter metrics "engine_tasks" in
  let c_hits = Metrics.counter metrics "cache_hits" in
  let c_misses = Metrics.counter metrics "cache_misses" in
  Array.iter (fun s -> Metrics.merge ~into:metrics s.s_metrics) shards;
  (* Deterministic engine telemetry: the task list is fixed and the cache
     counts with compute-once semantics (misses = distinct keys), so these
     merge into the report without breaking jobs-independence. Steal and
     idle counts are scheduling noise and stay in [pool], outside the
     rendered report. *)
  Metrics.incr ~by:pool.Pool.task_count c_tasks;
  Metrics.incr ~by:(Cache.hits cache) c_hits;
  Metrics.incr ~by:(Cache.misses cache) c_misses;
  let findings =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | f :: rest -> f :: take (n - 1) rest
    in
    take max_findings
      (List.concat_map (fun s -> s.s_findings) (Array.to_list shards))
  in
  let v name = Metrics.counter_value metrics name in
  let totals =
    {
      runs = v "runs";
      plans = v "plans";
      grants = v "grants";
      recovered = v "recovered";
      notices = v "notices";
      degraded = v "degraded";
      fail_open = v "fail_open";
      clean_mismatch = v "clean_mismatch";
      unguarded_failures = v "unguarded_failures";
    }
  in
  {
    base_seed;
    seeds;
    mode;
    totals;
    metrics;
    findings;
    ok = totals.fail_open = 0 && totals.clean_mismatch = 0;
    pool;
  }

let report_of r =
  let t = r.totals in
  {
    Report.title =
      Printf.sprintf "chaos sweep: %d fault plans (%d seeds from %d), mode %s"
        t.plans r.seeds r.base_seed
        (Dynamic.mode_name r.mode);
    params =
      [
        ("base_seed", Json.Int r.base_seed);
        ("seeds", Json.Int r.seeds);
        ("mode", Json.String (Dynamic.mode_name r.mode));
      ];
    metrics = r.metrics;
    rows =
      [
        ("runs", "guarded runs", None);
        ( "grants",
          "grants",
          Some (Printf.sprintf "%d recovered after faults fired" t.recovered) );
        ("notices", "notices", None);
        ("degraded", "degraded", None);
        ( "unguarded_failures",
          "unguarded crashes",
          Some "absorbed into F by the guard" );
        ("fail_open", "fail-open", None);
        ("clean_mismatch", "clean mismatches", None);
        ("engine_tasks", "engine tasks", None);
        ("cache_hits", "cache hits", Some "clean baselines reused");
        ("cache_misses", "cache misses", None);
      ];
    findings =
      List.map
        (fun f ->
          {
            Report.subject =
              [ f.entry; f.policy; "seed " ^ string_of_int f.seed; f.input ];
            fields =
              [
                ("entry", Json.String f.entry);
                ("policy", Json.String f.policy);
                ("seed", Json.Int f.seed);
                ("input", Json.String f.input);
              ];
            detail = f.detail;
          })
        r.findings;
    ok = r.ok;
    verdict_ok = "fail-secure (no fail-open outcome, clean runs bit-identical)";
    verdict_fail = "FAIL-OPEN OR DIVERGENCE FROM CLEAN RUNS DETECTED";
  }

let pp ppf r = Report.pp ppf (report_of r)
let to_json r = Report.to_json (report_of r)
let to_json_string r = Report.to_json_string (report_of r)
