(** Dynamic enforcement: the surveillance mechanism and its relatives.

    Section 3 of the paper associates with every variable [v] a surveillance
    variable [v̄] — the set of input indices that may have affected [v]'s
    current value — and with the program counter a surveillance variable
    [C̄]. This module implements that bookkeeping directly inside the
    interpreter (the equivalent source-to-source construction is
    {!Instrument}; a test asserts they agree pointwise).

    Four mechanisms share the machinery:

    - {b High-water mark} ([High_water]): surveillance variables only ever
      grow; an assignment adds the right-hand side's taint to the target's.
      The paper's baseline; it cannot "forget".
    - {b Surveillance} ([Surveillance], the paper's [M]): an assignment
      {e replaces} the target's taint by the right-hand side's taint joined
      with [C̄]. [C̄] grows at every decision and never shrinks. Sound when
      running time is not observable (Theorem 3); at least as complete as
      high-water, sometimes strictly more (it forgets).
    - {b Timed surveillance} ([Timed], the paper's [M']): like surveillance
      but the violation notice is issued {e at the decision box}, the moment
      a disallowed variable is about to be tested. Sound even when running
      time is observable (Theorem 3') — the abort happens before the secret
      can influence control flow, hence before it can influence timing.
    - {b Scoped surveillance} ([Scoped]): like surveillance, but [C̄] is
      restored to its previous value at the immediate postdominator of each
      decision — the "recognize single-entry single-exit constructs"
      refinement of Section 4 applied to the program counter. Strictly more
      complete on programs that compute after a tainted branch rejoins, and
      {e deliberately included although unsound in general}: whether it
      emits a violation can itself depend on the tested secret (the paper's
      "negative inference"). The experiment suite exhibits the
      counterexample; see EXPERIMENTS.md. *)

module Graph = Secpol_flowgraph.Graph

type mode = High_water | Surveillance | Scoped | Timed

val mode_name : mode -> string

val all_modes : mode list

type config = {
  mode : mode;
  allowed : Secpol_core.Iset.t;  (** the policy [allow(J)] being enforced *)
  fuel : int;
      (** Explicit step budget for each monitored run — the watchdog that
          makes the monitor a total function. Defaults to
          {!Secpol_flowgraph.Interp.default_fuel} (100_000 steps); there is
          no unbounded stepping. Exhaustion yields the violation notice
          {!fuel_notice}, never a hang or an exception. *)
  cost : Secpol_flowgraph.Expr.cost_model;
      (** Theorem 3' assumes [Uniform]; under [Operand_sized] even the
          timed mechanism leaks through granted-run durations — the side
          condition the paper states, made measurable (experiment E12) *)
  chatty_notices : bool;
      (** When true, violation notices name the offending surveillance
          variable's value — the "helpful" diagnostics of Example 4's
          Denning/Rotenberg mechanisms. The taint set is path-dependent,
          the path depends on disallowed values, so distinct notices can
          split a policy class: the tests exhibit the resulting
          unsoundness. Default false (the single notice Λ). *)
  hook : Secpol_flowgraph.Hook.t;
      (** Fault-injection point, consulted once per executed box (default
          {!Secpol_flowgraph.Hook.none}, which leaves runs bit-identical).
          An injected [Crash] becomes a [Failed] reply; [Starve] trips the
          fuel watchdog; [Corrupt] flips a bit of one surveillance
          variable's primary copy — the monitor keeps its taint state in
          two copies and cross-checks them before every read, so the
          damage surfaces as a [Failed] reply instead of silently
          steering enforcement. *)
  emit : Secpol_flowgraph.Emit.t;
      (** Trace-emission point (default {!Secpol_flowgraph.Emit.none},
          which leaves runs bit-identical — the same contract as [hook]).
          A sink receives one [box] call per committed box, a [taint] call
          for every surveillance-variable update, a [pc] call whenever the
          control-context taint changes, and a [condemn] call at the box
          that issues a Λ notice — enough to reconstruct, offline, the
          taint chain from input coordinate to condemning box
          ([Secpol_trace.Provenance]). *)
}

val config :
  ?fuel:int ->
  ?cost:Secpol_flowgraph.Expr.cost_model ->
  ?chatty_notices:bool ->
  ?hook:Secpol_flowgraph.Hook.t ->
  ?emit:Secpol_flowgraph.Emit.t ->
  mode:mode ->
  Secpol_core.Policy.t ->
  config
(** Builds a configuration from an [allow(...)] policy.
    @raise Invalid_argument on a general filter policy: the surveillance
    construction is defined for policies of the allow form. *)

val run :
  config -> Graph.t -> Secpol_core.Value.t array -> Secpol_core.Mechanism.reply
(** One monitored execution. Steps follow the same cost model as the plain
    interpreter (one per assignment or decision box), so timing-channel
    experiments can compare monitored and unmonitored runs.

    [run] is total: a wrong-arity input vector, a non-integer input, a
    runtime fault of the program or an injected fault of the monitor all
    come back as [Failed] (or [Denied]) replies — it never raises. *)

(** Surveillance-work counters from a residual run: how many committed
    assignment/decision boxes still did taint bookkeeping ([watched_boxes])
    versus how many the static plan released ([skipped_boxes]). Halt boxes
    are not counted — their check always runs. *)
type residual_stats = { watched_boxes : int; skipped_boxes : int }

val run_residual :
  config ->
  watch:bool array ->
  Graph.t ->
  Secpol_core.Value.t array ->
  Secpol_core.Mechanism.reply * residual_stats
(** One monitored execution under a static watch plan
    ({!Secpol_staticflow.Certifier.residual_plan}): boxes with
    [watch.(node) = false] skip their surveillance work — an unwatched
    assignment records the empty taint (both redundant copies), an
    unwatched decision leaves the control-context taint untouched and
    performs no timed check. Because the plan only releases boxes whose
    taint contribution provably has no disallowed part (or feeds no check),
    the reply is {e bit-identical} to {!run}'s on every input: same
    response, same notice, same step count. Fuel, fault hooks, the
    redundant-store consistency check and halt-box checks run unchanged;
    scoped-mode restore frames are pushed at every decision, watched or
    not. Trace events still fire but carry residual taint values, so
    provenance from a residual run is partial by design.

    @raise Invalid_argument if [cfg.chatty_notices] is set (chatty notices
    quote taint values the residual monitor does not maintain) or if the
    plan's length differs from the graph's node count. *)

(** {2 The step machine}

    [run] folded open: a prepared {!machine} (configuration plus the
    per-graph analyses), an explicit {!state} carried between boxes, and a
    {!step} function that commits exactly one assignment, decision or halt
    box — one hook consultation, one fuel check. [run] is definitionally
    [start] followed by {!run_to_end}, and is bit-identical to the
    historical recursive interpreter.

    The machine exists for durability: between steps the whole monitored
    run is a first-class value. {!image} flattens it to integers (taint
    sets as bitmasks, shadow copies and exact array lengths included) so
    [Secpol_journal] can checkpoint and journal it; {!of_image} validates
    and rebuilds a state, after which {!run_to_end} continues the run as if
    it had never stopped. *)

type machine

type state

type step_result = Step of state | Final of Secpol_core.Mechanism.reply

val prepare : config -> Graph.t -> machine
(** Fix the per-graph analyses (immediate postdominators for [Scoped]
    mode); pure in the graph, reusable across runs. *)

val machine_config : machine -> config

val machine_graph : machine -> Graph.t

val start :
  machine -> Secpol_core.Value.t array -> (state, Secpol_core.Mechanism.reply) result
(** The state poised at the first real box (the start box costs nothing and
    is crossed here). [Error] carries the [Failed] reply for a wrong-arity
    or non-integer input vector — the same reply {!run} would return. *)

val step : machine -> state -> step_result
(** Commit one box. [Step] is the state after the box; [Final] is the
    run's reply (grant, violation notice, or fault). The store and taint
    arrays are mutated in place — a [state] is a cursor into a live run,
    not a persistent value; use {!image} to take a durable copy. Never
    raises: runtime faults of the program become [Final (Failed _)]. *)

val run_to_end : machine -> state -> Secpol_core.Mechanism.reply
(** Fold {!step} to the reply. *)

val steps_of : state -> int
(** The step counter (fuel consumed so far). *)

val node_of : state -> int
(** The node about to execute. *)

(** A flat integer-only copy of a {!state}: variable store, both copies of
    the redundant taint store (masks), program-counter taint, scoped-mode
    frames, node and step counter. Exact array lengths are preserved —
    grow-on-demand sizing is part of deterministic replay. *)
type image = {
  im_node : int;
  im_steps : int;
  im_inputs : int array;
  im_regs : int array;
  im_out : int;
  im_taint_inputs : int array;
  im_taint_regs : int array;
  im_taint_out : int;
  im_shadow_inputs : int array;
  im_shadow_regs : int array;
  im_shadow_out : int;
  im_pc : int;
  im_frames : (int * int) list;
}

val image : state -> image
(** A durable copy; shares nothing with the live state. *)

val of_image : Graph.t -> image -> (state, string) result
(** Validate an image against the graph (node range, arity, array lengths,
    non-negative masks, frame targets) and rebuild the state. [Error]
    explains the first inconsistency — a decoded-but-nonsensical image must
    be a typed failure, never a crash or a silently wrong resume. *)

val image_equal : image -> image -> bool

val mechanism : config -> Graph.t -> Secpol_core.Mechanism.t
(** Package as a protection mechanism for the flowchart's program. *)

val mechanism_of :
  ?fuel:int ->
  ?cost:Secpol_flowgraph.Expr.cost_model ->
  ?hook:Secpol_flowgraph.Hook.t ->
  ?emit:Secpol_flowgraph.Emit.t ->
  mode:mode ->
  Secpol_core.Policy.t ->
  Graph.t ->
  Secpol_core.Mechanism.t
[@@deprecated
  "use Dynamic.mechanism (Dynamic.config ... policy) g, or the Secpol.Run \
   facade"]
(** Convenience: configuration and packaging in one step.
    @deprecated The one-entry-point spelling is
    [mechanism (config ?fuel ?cost ?hook ?emit ~mode policy) g]; whole-stack
    callers should use [Secpol.Run]. *)

val notice : string
(** The violation notice Λ used by all four mechanisms. *)

val fuel_notice : string
(** The distinguished violation notice ("Λ/fuel") issued when a monitored
    run exhausts its step budget. Jones–Lipton mechanisms map every input
    into [E ∪ F]; a monitor that hangs would be a third outcome, so the
    watchdog trip is itself an element of [F]. *)

val corruption_fault : string
(** The [Failed] message reporting that the redundant surveillance store's
    two copies disagreed — i.e. injected state corruption was detected
    before it could steer enforcement. *)

val out_taint :
  ?fuel:int ->
  Graph.t ->
  Secpol_core.Value.t array ->
  (Secpol_core.Iset.t, string) result
(** Observer, not enforcer: run once on [inputs] tracking taint with
    [Scoped] semantics (the program-counter taint is restored at each
    decision's immediate postdominator — the run-time counterpart of the
    static analysis's bounded decision regions) and return the taint the
    halt box would check, enforcing nothing. [Error] on divergence, fault,
    or a [Halt_violation] box.

    The static analysis ranges over {e all} paths through each region while
    a run takes one, so for every terminating run the static out-taint of
    {!Secpol_staticflow.Dataflow} is a superset of this set — the soundness
    inclusion the test suite checks corpus-wide. (The [Surveillance] mode's
    monotone pc would {e not} satisfy that inclusion: its pc keeps taint
    from branches the static analysis already closed at the join.) *)
