(** The paper's surveillance construction as a source-to-source transform.

    Section 3 defines the surveillance protection mechanism by {e rewriting
    the flowchart}: the mechanism [M] is itself a flowchart over the original
    variables plus surveillance variables. This module performs that exact
    construction. Taint sets are encoded as integer bitmasks held in fresh
    registers, set union is bitwise-or ([Expr.Bor]), and the subset test
    [v̄ ⊆ J] becomes [(v̄ | maskJ) = maskJ].

    Transformation rules (for policy [allow(J)]):

    + after the start box, initialize [x̄i := {i}] (registers and [ȳ] are
      0-initialized by the language, i.e. the empty set);
    + each assignment box [v := E(w1..wp)] becomes
      [v̄ := w̄1 ∪ ... ∪ w̄p ∪ C̄] followed by [v := E];
    + each decision box on [B(w1..wp)] becomes [C̄ := C̄ ∪ w̄1 ∪ ... ∪ w̄p]
      followed by the original decision — or, in the timed variant of
      Theorem 3', a decision [w̄1 ∪ ... ∪ w̄p ∪ C̄ ⊆ J] that halts with a
      violation notice {e before} the disallowed test executes;
    + each halt box becomes the decision [ȳ ∪ C̄ ⊆ J], leading to the real
      halt or to a violation halt.

    The result is an ordinary flowchart; packaged with {!mechanism} it is a
    protection mechanism for the original program. A property test checks it
    agrees pointwise with the {!Dynamic} interpreter in the corresponding
    mode.

    On the halt rule: the paper's figure tests the output's surveillance
    variable; the test here includes [C̄] as well. Without it, a program
    halting with an untouched [y] on one branch of a disallowed test would
    grant on that branch and deny on the other — a violation-notice channel
    (exactly the "negative inference" the paper warns about). Rule (2)
    already folds [C̄] into [ȳ] at every assignment, so including [C̄] at
    halt only affects such untouched-output paths. *)

module Graph = Secpol_flowgraph.Graph
module Var = Secpol_flowgraph.Var

type variant = Untimed | Timed_variant

val instrument :
  variant -> allowed:Secpol_core.Iset.t -> Graph.t -> Graph.t
(** Rewrite a plain flowchart into its surveillance mechanism flowchart.
    @raise Invalid_argument if the input graph already contains violation
    halts, or if the arity exceeds {!Secpol_core.Iset.max_index}. *)

val mechanism :
  ?fuel:int ->
  ?emit:Secpol_flowgraph.Emit.t ->
  variant ->
  policy:Secpol_core.Policy.t ->
  Graph.t ->
  Secpol_core.Mechanism.t
(** Instrument and package: runs the rewritten flowchart with the plain
    interpreter and maps its violation halts to violation replies. [emit]
    observes the run in the {e original} program's vocabulary via
    {!emit_adapter}.
    @raise Invalid_argument on a non-[allow] policy. *)

val emit_adapter :
  Graph.t -> Secpol_flowgraph.Emit.t -> Secpol_flowgraph.Emit.t
(** [emit_adapter g target] adapts a trace emitter for the original graph
    [g] into one suitable for [g]'s instrumented flowchart: assignments to
    the fresh surveillance registers are decoded (via the register layout
    and the bitmask encoding) and reported to [target] as [taint]/[pc]
    events over the original variables, other calls pass through. Source
    variable sets are not recoverable from the rewritten flowchart and
    arrive empty. [emit_adapter g Emit.none == Emit.none]. *)

val surveillance_reg : Graph.t -> Var.t -> Var.t
(** The fresh register holding the surveillance variable of [v] in the
    instrumented version of the given graph (for inspection and tests). *)

val pc_reg : Graph.t -> Var.t
(** The fresh register holding [C̄]. *)
