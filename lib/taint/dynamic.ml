module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Graph = Secpol_flowgraph.Graph
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Store = Secpol_flowgraph.Store
module Interp = Secpol_flowgraph.Interp
module Hook = Secpol_flowgraph.Hook
module Emit = Secpol_flowgraph.Emit
module Graphalgo = Secpol_flowgraph.Graphalgo

type mode = High_water | Surveillance | Scoped | Timed

let mode_name = function
  | High_water -> "high-water"
  | Surveillance -> "surveillance"
  | Scoped -> "scoped"
  | Timed -> "timed"

let all_modes = [ High_water; Surveillance; Scoped; Timed ]

type config = {
  mode : mode;
  allowed : Iset.t;
  fuel : int;
  cost : Expr.cost_model;
  chatty_notices : bool;
  hook : Hook.t;
  emit : Emit.t;
}

let notice = Secpol_core.Notice.(to_string Condemned) (* Λ *)
let fuel_notice = Secpol_core.Notice.(to_string Fuel)
let corruption_fault = Interp.monitor_fault_prefix ^ "surveillance state corrupted"

let config ?(fuel = Interp.default_fuel) ?(cost = Expr.Uniform)
    ?(chatty_notices = false) ?(hook = Hook.none) ?(emit = Emit.none) ~mode
    policy =
  match Policy.allowed_indices policy with
  | Some allowed -> { mode; allowed; fuel; cost; chatty_notices; hook; emit }
  | None ->
      invalid_arg
        (Printf.sprintf
           "Dynamic.config: surveillance is defined for allow(...) policies, \
            got %s"
           (Policy.name policy))

(* Taint store: one surveillance variable per program variable, kept in TWO
   copies. [set] writes both; reads come from the primary. An injected
   Corrupt fault damages only the primary, so the copies disagree — and the
   monitor cross-checks them before every read of taint state ([verify]),
   turning silent corruption into a detected monitor fault. The discipline
   matters: were a corrupted taint ever read, it could propagate through an
   assignment into BOTH copies of the target's surveillance variable and
   become undetectable — an unsound "healed" state that might later grant a
   disallowed output. *)
module Taint_store = struct
  type t = {
    inputs : Iset.t array;
    mutable regs : Iset.t array;
    mutable out : Iset.t;
    shadow_inputs : Iset.t array;
    mutable shadow_regs : Iset.t array;
    mutable shadow_out : Iset.t;
  }

  let create ~arity ~max_reg =
    {
      inputs = Array.init arity Iset.singleton;
      regs = Array.make (max 1 (max_reg + 1)) Iset.empty;
      out = Iset.empty;
      shadow_inputs = Array.init arity Iset.singleton;
      shadow_regs = Array.make (max 1 (max_reg + 1)) Iset.empty;
      shadow_out = Iset.empty;
    }

  let grow a i =
    let bigger = Array.make (max (i + 1) (2 * Array.length a)) Iset.empty in
    Array.blit a 0 bigger 0 (Array.length a);
    bigger

  let ensure st i =
    if i >= Array.length st.regs then begin
      st.regs <- grow st.regs i;
      st.shadow_regs <- grow st.shadow_regs i
    end

  let get st = function
    | Var.Input i -> st.inputs.(i)
    | Var.Reg i ->
        ensure st i;
        st.regs.(i)
    | Var.Out -> st.out

  let set st v l =
    match v with
    | Var.Input i ->
        st.inputs.(i) <- l;
        st.shadow_inputs.(i) <- l
    | Var.Reg i ->
        ensure st i;
        st.regs.(i) <- l;
        st.shadow_regs.(i) <- l
    | Var.Out ->
        st.out <- l;
        st.shadow_out <- l

  let of_vars st vs =
    Var.Set.fold (fun v acc -> Iset.union (get st v) acc) vs Iset.empty

  (* Deterministically pick a surveillance variable and flip one bit of its
     PRIMARY copy only — the injected hardware fault. *)
  let corrupt st ~step =
    let nregs = Array.length st.regs in
    let nvars = Array.length st.inputs + nregs + 1 in
    let slot = abs step mod nvars in
    let bit = abs (step / nvars) mod 4 in
    let flip l = if Iset.mem bit l then Iset.remove bit l else Iset.add bit l in
    if slot < Array.length st.inputs then st.inputs.(slot) <- flip st.inputs.(slot)
    else if slot < Array.length st.inputs + nregs then
      st.regs.(slot - Array.length st.inputs) <-
        flip st.regs.(slot - Array.length st.inputs)
    else st.out <- flip st.out

  let consistent st =
    let eq a b =
      let n = Array.length a in
      let rec go i = i >= n || (Iset.equal a.(i) b.(i) && go (i + 1)) in
      go 0
    in
    eq st.inputs st.shadow_inputs && eq st.regs st.shadow_regs
    && Iset.equal st.out st.shadow_out
end

let reply response steps = { Mechanism.response; steps }

let denial_text cfg ~taint =
  if cfg.chatty_notices then
    Printf.sprintf "%s: disallowed surveillance value %s" notice
      (Iset.to_string taint)
  else notice

let denied cfg ~taint steps = reply (Mechanism.Denied (denial_text cfg ~taint)) steps

(* Fuel exhaustion is a WATCHDOG trip, not a hang: the monitor stays a total
   function into E u F by reporting a distinguished violation notice. *)
let out_of_fuel steps = reply (Mechanism.Denied fuel_notice) steps

(* --- the step machine ----------------------------------------------------

   The monitor as an explicit small-step machine: [prepare] fixes the
   per-graph analyses, [start] materializes the state a run carries between
   boxes, [step] commits exactly one box (one hook consultation, one fuel
   check). [run] below folds the machine to a reply and is bit-identical to
   the historical recursive interpreter — every chaos sweep and parity test
   holds it to that. The explicit state is what makes monitored runs
   durable: between any two [step]s the whole run is a first-class value
   that can be imaged, journaled, and restored after a crash
   ([Secpol_journal]). *)

type state = {
  st_node : int;
  st_steps : int;
  st_store : Store.t;
  st_taints : Taint_store.t;
  st_pc : Iset.t;
  (* Scoped mode: frames of (saved C̄, node at which to restore it),
     innermost first. *)
  st_frames : (Iset.t * int) list;
}

type machine = { m_cfg : config; m_graph : Graph.t; m_ipd : int array }

type step_result = Step of state | Final of Mechanism.reply

let prepare cfg g =
  let ipd =
    match cfg.mode with
    | Scoped -> Graphalgo.immediate_postdominator g
    | High_water | Surveillance | Timed -> [||]
  in
  { m_cfg = cfg; m_graph = g; m_ipd = ipd }

let machine_config m = m.m_cfg
let machine_graph m = m.m_graph
let steps_of st = st.st_steps
let node_of st = st.st_node

let start m inputs =
  let g = m.m_graph in
  if Array.length inputs <> g.Graph.arity then
    Error
      (reply
         (Mechanism.Failed
            (Printf.sprintf "Dynamic.run %s: expected %d inputs, got %d"
               g.Graph.name g.Graph.arity (Array.length inputs)))
         0)
  else
    match Store.of_values ~inputs ~max_reg:(Graph.max_reg g) with
    | exception Invalid_argument msg -> Error (reply (Mechanism.Failed msg) 0)
    | store ->
        let taints =
          Taint_store.create ~arity:g.Graph.arity ~max_reg:(Graph.max_reg g)
        in
        (* The start box costs no step and consults no hook; cross it here
           so every [step] commits a real box. (Graph.validate guarantees a
           single start box with no back edges into it.) *)
        let node =
          match g.Graph.nodes.(g.Graph.entry) with
          | Graph.Start next -> next
          | Graph.Assign _ | Graph.Decision _ | Graph.Halt
          | Graph.Halt_violation _ ->
              g.Graph.entry
        in
        Ok
          {
            st_node = node;
            st_steps = 0;
            st_store = store;
            st_taints = taints;
            st_pc = Iset.empty;
            st_frames = [];
          }

let rec restore_frames node pc frames =
  match frames with
  | (saved, at) :: rest when at = node -> restore_frames node saved rest
  | _ -> (pc, frames)

let out_src = Var.Set.singleton Var.Out

let step m st =
  let cfg = m.m_cfg and g = m.m_graph in
  let steps = st.st_steps in
  let pc, frames =
    if cfg.mode = Scoped then restore_frames st.st_node st.st_pc st.st_frames
    else (st.st_pc, st.st_frames)
  in
  (match cfg.emit with
  | Emit.Null -> ()
  | Emit.Sink _ ->
      (* A scope frame popped: the control context shrank at this box. *)
      if not (frames == st.st_frames) then
        Emit.pc cfg.emit ~step:steps ~node:st.st_node ~pc ~srcs:Var.Set.empty);
  let taints = st.st_taints in
  let env = Store.lookup st.st_store in
  let ok l = Iset.subset l cfg.allowed in
  (* Consult the fault hook, then cross-check the redundant taint store
     BEFORE any surveillance variable is read at this box. The result is
     the fail-secure path to take instead of the box's normal behavior, if
     any. *)
  let stricken () =
    let injected =
      match cfg.hook ~step:steps with
      | Some (Hook.Crash msg) ->
          Some (reply (Mechanism.Failed (Interp.monitor_fault_prefix ^ msg)) steps)
      | Some Hook.Starve -> Some (out_of_fuel steps)
      | Some Hook.Corrupt ->
          Taint_store.corrupt taints ~step:steps;
          None
      | None -> None
    in
    match injected with
    | Some _ as r -> r
    | None ->
        if Taint_store.consistent taints then None
        else Some (reply (Mechanism.Failed corruption_fault) steps)
  in
  try
    match g.Graph.nodes.(st.st_node) with
    | Graph.Start next ->
        Step { st with st_node = next; st_pc = pc; st_frames = frames }
    | Graph.Assign (v, e, next) -> (
        match stricken () with
        | Some r -> Final r
        | None ->
            if steps >= cfg.fuel then Final (out_of_fuel steps)
            else begin
              let vs = Expr.vars e in
              let rhs_taint = Taint_store.of_vars taints vs in
              let base = Iset.union rhs_taint pc in
              let taint =
                match cfg.mode with
                | High_water -> Iset.union (Taint_store.get taints v) base
                | Surveillance | Scoped | Timed -> base
              in
              let value, extra = Expr.eval_cost cfg.cost env e in
              Store.set st.st_store v value;
              Taint_store.set taints v taint;
              Emit.box cfg.emit ~step:steps ~node:st.st_node;
              Emit.taint cfg.emit ~step:steps ~node:st.st_node ~var:v ~taint
                ~srcs:vs;
              Step
                {
                  st with
                  st_node = next;
                  st_steps = steps + 1 + extra;
                  st_pc = pc;
                  st_frames = frames;
                }
            end)
    | Graph.Decision (p, if_true, if_false) -> (
        match stricken () with
        | Some r -> Final r
        | None ->
            if steps >= cfg.fuel then Final (out_of_fuel steps)
            else begin
              let pvs = Expr.pred_vars p in
              let test_taint = Taint_store.of_vars taints pvs in
              match cfg.mode with
              | Timed when not (ok (Iset.union test_taint pc)) ->
                  (* Rule of Theorem 3': abort before the disallowed
                     test. *)
                  let taint = Iset.union test_taint pc in
                  Emit.box cfg.emit ~step:steps ~node:st.st_node;
                  Emit.condemn cfg.emit ~step:steps ~node:st.st_node
                    ~at_decision:true ~taint ~srcs:pvs
                    ~notice:(denial_text cfg ~taint);
                  Final (denied cfg ~taint steps)
              | High_water | Surveillance | Timed ->
                  let pc = Iset.union pc test_taint in
                  let taken, extra = Expr.eval_pred_cost cfg.cost env p in
                  Emit.box cfg.emit ~step:steps ~node:st.st_node;
                  Emit.pc cfg.emit ~step:steps ~node:st.st_node ~pc ~srcs:pvs;
                  Step
                    {
                      st with
                      st_node = (if taken then if_true else if_false);
                      st_steps = steps + 1 + extra;
                      st_pc = pc;
                      st_frames = frames;
                    }
              | Scoped ->
                  let frames =
                    if m.m_ipd.(st.st_node) >= 0 then
                      (pc, m.m_ipd.(st.st_node)) :: frames
                    else frames
                  in
                  let pc = Iset.union pc test_taint in
                  let taken, extra = Expr.eval_pred_cost cfg.cost env p in
                  Emit.box cfg.emit ~step:steps ~node:st.st_node;
                  Emit.pc cfg.emit ~step:steps ~node:st.st_node ~pc ~srcs:pvs;
                  Step
                    {
                      st with
                      st_node = (if taken then if_true else if_false);
                      st_steps = steps + 1 + extra;
                      st_pc = pc;
                      st_frames = frames;
                    }
            end)
    | Graph.Halt -> (
        match stricken () with
        | Some r -> Final r
        | None ->
            let out_taint = Iset.union (Taint_store.get taints Var.Out) pc in
            Emit.box cfg.emit ~step:steps ~node:st.st_node;
            if ok out_taint then
              Final
                (reply (Mechanism.Granted (Value.Int (Store.output st.st_store))) steps)
            else begin
              Emit.condemn cfg.emit ~step:steps ~node:st.st_node
                ~at_decision:false ~taint:out_taint ~srcs:out_src
                ~notice:(denial_text cfg ~taint:out_taint);
              Final (denied cfg ~taint:out_taint steps)
            end)
    | Graph.Halt_violation n ->
        Emit.box cfg.emit ~step:steps ~node:st.st_node;
        Emit.condemn cfg.emit ~step:steps ~node:st.st_node ~at_decision:false
          ~taint:Iset.empty ~srcs:Var.Set.empty ~notice:n;
        Final (reply (Mechanism.Denied n) steps)
  with Expr.Runtime_fault e ->
    Final (reply (Mechanism.Failed (Expr.error_message e)) steps)

let run_to_end m st =
  let rec loop st = match step m st with Step st -> loop st | Final r -> r in
  loop st

let run cfg g inputs =
  let m = prepare cfg g in
  match start m inputs with Error r -> r | Ok st -> run_to_end m st

(* --- serializable state images ------------------------------------------

   A flat, integer-only copy of everything a [state] carries, including the
   shadow copies of the redundant taint store (restoring a corrupted state
   must keep the corruption detectable) and the exact array lengths
   (grow-on-demand sizing is part of deterministic replay). Taint sets
   travel as their bitmask encoding. *)

type image = {
  im_node : int;
  im_steps : int;
  im_inputs : int array;
  im_regs : int array;
  im_out : int;
  im_taint_inputs : int array;
  im_taint_regs : int array;
  im_taint_out : int;
  im_shadow_inputs : int array;
  im_shadow_regs : int array;
  im_shadow_out : int;
  im_pc : int;
  im_frames : (int * int) list;
}

let image st =
  let snap = Store.snapshot st.st_store in
  let ts = st.st_taints in
  let masks = Array.map Iset.to_mask in
  {
    im_node = st.st_node;
    im_steps = st.st_steps;
    im_inputs = snap.Store.snap_inputs;
    im_regs = snap.Store.snap_regs;
    im_out = snap.Store.snap_out;
    im_taint_inputs = masks ts.Taint_store.inputs;
    im_taint_regs = masks ts.Taint_store.regs;
    im_taint_out = Iset.to_mask ts.Taint_store.out;
    im_shadow_inputs = masks ts.Taint_store.shadow_inputs;
    im_shadow_regs = masks ts.Taint_store.shadow_regs;
    im_shadow_out = Iset.to_mask ts.Taint_store.shadow_out;
    im_pc = Iset.to_mask st.st_pc;
    im_frames =
      List.map (fun (pc, at) -> (Iset.to_mask pc, at)) st.st_frames;
  }

let image_equal (a : image) (b : image) = a = b

let of_image g img =
  let err fmt = Printf.ksprintf (fun m -> Error ("Dynamic.of_image: " ^ m)) fmt in
  let nodes = Graph.node_count g in
  let nonneg a = Array.for_all (fun m -> m >= 0) a in
  if img.im_node < 0 || img.im_node >= nodes then
    err "node %d outside [0,%d)" img.im_node nodes
  else if img.im_steps < 0 then err "negative step count %d" img.im_steps
  else if Array.length img.im_inputs <> g.Graph.arity then
    err "input array length %d, arity %d" (Array.length img.im_inputs)
      g.Graph.arity
  else if Array.length img.im_regs = 0 then err "empty register array"
  else if
    Array.length img.im_taint_inputs <> g.Graph.arity
    || Array.length img.im_shadow_inputs <> g.Graph.arity
  then err "taint input arrays do not match arity %d" g.Graph.arity
  else if
    Array.length img.im_taint_regs = 0
    || Array.length img.im_taint_regs <> Array.length img.im_shadow_regs
  then err "taint register arrays empty or of unequal length"
  else if
    not
      (nonneg img.im_taint_inputs && nonneg img.im_taint_regs
      && nonneg img.im_shadow_inputs && nonneg img.im_shadow_regs
      && img.im_taint_out >= 0 && img.im_shadow_out >= 0 && img.im_pc >= 0)
  then err "negative taint mask"
  else if
    List.exists (fun (pc, at) -> pc < 0 || at < 0 || at >= nodes) img.im_frames
  then err "frame with negative mask or out-of-range restore node"
  else
    let sets = Array.map Iset.of_mask in
    let store =
      Store.restore
        {
          Store.snap_inputs = img.im_inputs;
          snap_regs = img.im_regs;
          snap_out = img.im_out;
        }
    in
    let taints =
      {
        Taint_store.inputs = sets img.im_taint_inputs;
        regs = sets img.im_taint_regs;
        out = Iset.of_mask img.im_taint_out;
        shadow_inputs = sets img.im_shadow_inputs;
        shadow_regs = sets img.im_shadow_regs;
        shadow_out = Iset.of_mask img.im_shadow_out;
      }
    in
    Ok
      {
        st_node = img.im_node;
        st_steps = img.im_steps;
        st_store = store;
        st_taints = taints;
        st_pc = Iset.of_mask img.im_pc;
        st_frames =
          List.map (fun (pc, at) -> (Iset.of_mask pc, at)) img.im_frames;
      }

(* Observer variant for the static-soundness cross-check: track taint with
   Scoped semantics (pc restored at the immediate postdominator — the
   dynamic counterpart of the static analysis's bounded decision regions)
   but enforce nothing, and report the taint the halt-box check would see. *)
let out_taint ?(fuel = Interp.default_fuel) g inputs =
  if Array.length inputs <> g.Graph.arity then
    Error
      (Printf.sprintf "Dynamic.out_taint %s: expected %d inputs, got %d"
         g.Graph.name g.Graph.arity (Array.length inputs))
  else
    let max_reg = Graph.max_reg g in
    match Store.of_values ~inputs ~max_reg with
    | exception Invalid_argument m -> Error m
    | store ->
        let taints = Taint_store.create ~arity:g.Graph.arity ~max_reg in
        let env = Store.lookup store in
        let ipd = Graphalgo.immediate_postdominator g in
        let frames : (Iset.t * int) list ref = ref [] in
        let pc = ref Iset.empty in
        let restore_at node =
          let rec pop () =
            match !frames with
            | (saved, at) :: rest when at = node ->
                pc := saved;
                frames := rest;
                pop ()
            | _ -> ()
          in
          pop ()
        in
        let rec go node steps =
          restore_at node;
          match g.Graph.nodes.(node) with
          | Graph.Start next -> go next steps
          | Graph.Assign (v, e, next) ->
              if steps >= fuel then Error "diverged"
              else begin
                let rhs_taint = Taint_store.of_vars taints (Expr.vars e) in
                let value, extra = Expr.eval_cost Expr.Uniform env e in
                Store.set store v value;
                Taint_store.set taints v (Iset.union rhs_taint !pc);
                go next (steps + 1 + extra)
              end
          | Graph.Decision (p, if_true, if_false) ->
              if steps >= fuel then Error "diverged"
              else begin
                let test_taint = Taint_store.of_vars taints (Expr.pred_vars p) in
                (if ipd.(node) >= 0 then frames := (!pc, ipd.(node)) :: !frames);
                pc := Iset.union !pc test_taint;
                let taken, extra = Expr.eval_pred_cost Expr.Uniform env p in
                go (if taken then if_true else if_false) (steps + 1 + extra)
              end
          | Graph.Halt -> Ok (Iset.union (Taint_store.get taints Var.Out) !pc)
          | Graph.Halt_violation n -> Error ("halted with violation notice " ^ n)
        in
        (try go g.Graph.entry 0
         with Expr.Runtime_fault e -> Error (Expr.error_message e))

(* --- residual monitoring -------------------------------------------------

   [run_residual] executes a static watch plan ([Secpol_staticflow.Certifier.
   residual_plan]): boxes marked unwatched skip their surveillance work.
   The reply is bit-identical to [run]'s because verdicts depend only on
   the DISALLOWED part of each checked taint set (with the single notice,
   "taint within allowed" is "no disallowed bits"), and the plan guarantees
   skipping preserves those parts exactly:

   - an unwatched assignment writes the empty set in place of the join its
     static bound proves free of disallowed bits (or whose target can never
     reach a check) — both copies, so the redundant-store cross-check keeps
     working;
   - an unwatched decision leaves C-bar unchanged — the bits it would add
     are all allowed — and, in scoped mode, still pushes its restore frame
     so inner watched decisions pop the same contexts;
   - halt boxes, the fuel watchdog, the fault hook and the consistency
     check run unchanged; step accounting is untouched.

   Chatty notices are refused: their text quotes the full taint value,
   which residual tracking deliberately does not maintain. Trace events
   still fire but carry residual taint values; journaling composes with
   the FULL monitor only (a residual image would not resume into one). *)

type residual_stats = { watched_boxes : int; skipped_boxes : int }

let rec run_residual cfg ~watch g inputs =
  if cfg.chatty_notices then
    invalid_arg
      "Dynamic.run_residual: chatty notices quote taint values the residual \
       monitor does not track";
  if Array.length watch <> Array.length g.Graph.nodes then
    invalid_arg
      (Printf.sprintf
         "Dynamic.run_residual %s: plan covers %d nodes, graph has %d"
         g.Graph.name (Array.length watch)
         (Array.length g.Graph.nodes));
  let m = prepare cfg g in
  let watched = ref 0 and skipped = ref 0 in
  let commit node = incr (if watch.(node) then watched else skipped) in
  let rec go st =
    match residual_step m ~watch ~commit st with
    | Step st -> go st
    | Final r -> r
  in
  let reply =
    match start m inputs with Error r -> r | Ok st -> go st
  in
  (reply, { watched_boxes = !watched; skipped_boxes = !skipped })

and residual_step m ~watch ~commit st =
  let cfg = m.m_cfg and g = m.m_graph in
  let steps = st.st_steps in
  let pc, frames =
    if cfg.mode = Scoped then restore_frames st.st_node st.st_pc st.st_frames
    else (st.st_pc, st.st_frames)
  in
  (match cfg.emit with
  | Emit.Null -> ()
  | Emit.Sink _ ->
      if not (frames == st.st_frames) then
        Emit.pc cfg.emit ~step:steps ~node:st.st_node ~pc ~srcs:Var.Set.empty);
  let taints = st.st_taints in
  let env = Store.lookup st.st_store in
  let ok l = Iset.subset l cfg.allowed in
  let stricken () =
    let injected =
      match cfg.hook ~step:steps with
      | Some (Hook.Crash msg) ->
          Some (reply (Mechanism.Failed (Interp.monitor_fault_prefix ^ msg)) steps)
      | Some Hook.Starve -> Some (out_of_fuel steps)
      | Some Hook.Corrupt ->
          Taint_store.corrupt taints ~step:steps;
          None
      | None -> None
    in
    match injected with
    | Some _ as r -> r
    | None ->
        if Taint_store.consistent taints then None
        else Some (reply (Mechanism.Failed corruption_fault) steps)
  in
  try
    match g.Graph.nodes.(st.st_node) with
    | Graph.Start next ->
        Step { st with st_node = next; st_pc = pc; st_frames = frames }
    | Graph.Assign (v, e, next) -> (
        match stricken () with
        | Some r -> Final r
        | None ->
            if steps >= cfg.fuel then Final (out_of_fuel steps)
            else begin
              commit st.st_node;
              let taint =
                if watch.(st.st_node) then begin
                  let vs = Expr.vars e in
                  let rhs_taint = Taint_store.of_vars taints vs in
                  let base = Iset.union rhs_taint pc in
                  match cfg.mode with
                  | High_water -> Iset.union (Taint_store.get taints v) base
                  | Surveillance | Scoped | Timed -> base
                end
                else Iset.empty
              in
              let value, extra = Expr.eval_cost cfg.cost env e in
              Store.set st.st_store v value;
              Taint_store.set taints v taint;
              Emit.box cfg.emit ~step:steps ~node:st.st_node;
              if watch.(st.st_node) then
                Emit.taint cfg.emit ~step:steps ~node:st.st_node ~var:v ~taint
                  ~srcs:(Expr.vars e);
              Step
                {
                  st with
                  st_node = next;
                  st_steps = steps + 1 + extra;
                  st_pc = pc;
                  st_frames = frames;
                }
            end)
    | Graph.Decision (p, if_true, if_false) -> (
        match stricken () with
        | Some r -> Final r
        | None ->
            if steps >= cfg.fuel then Final (out_of_fuel steps)
            else begin
              commit st.st_node;
              (* Scoped frames are pushed watched or not: an inner watched
                 decision must pop the same saved contexts either way. *)
              let frames =
                if cfg.mode = Scoped && m.m_ipd.(st.st_node) >= 0 then
                  (pc, m.m_ipd.(st.st_node)) :: frames
                else frames
              in
              if watch.(st.st_node) then begin
                let pvs = Expr.pred_vars p in
                let test_taint = Taint_store.of_vars taints pvs in
                match cfg.mode with
                | Timed when not (ok (Iset.union test_taint pc)) ->
                    let taint = Iset.union test_taint pc in
                    Emit.box cfg.emit ~step:steps ~node:st.st_node;
                    Emit.condemn cfg.emit ~step:steps ~node:st.st_node
                      ~at_decision:true ~taint ~srcs:pvs
                      ~notice:(denial_text cfg ~taint);
                    Final (denied cfg ~taint steps)
                | High_water | Surveillance | Scoped | Timed ->
                    let pc = Iset.union pc test_taint in
                    let taken, extra = Expr.eval_pred_cost cfg.cost env p in
                    Emit.box cfg.emit ~step:steps ~node:st.st_node;
                    Emit.pc cfg.emit ~step:steps ~node:st.st_node ~pc ~srcs:pvs;
                    Step
                      {
                        st with
                        st_node = (if taken then if_true else if_false);
                        st_steps = steps + 1 + extra;
                        st_pc = pc;
                        st_frames = frames;
                      }
              end
              else begin
                (* The plan proved this test adds only allowed bits, so the
                   timed check cannot fire and C-bar's disallowed part is
                   unchanged. *)
                let taken, extra = Expr.eval_pred_cost cfg.cost env p in
                Emit.box cfg.emit ~step:steps ~node:st.st_node;
                Step
                  {
                    st with
                    st_node = (if taken then if_true else if_false);
                    st_steps = steps + 1 + extra;
                    st_pc = pc;
                    st_frames = frames;
                  }
              end
            end)
    | Graph.Halt -> (
        match stricken () with
        | Some r -> Final r
        | None ->
            let out_taint = Iset.union (Taint_store.get taints Var.Out) pc in
            Emit.box cfg.emit ~step:steps ~node:st.st_node;
            if ok out_taint then
              Final
                (reply (Mechanism.Granted (Value.Int (Store.output st.st_store))) steps)
            else begin
              Emit.condemn cfg.emit ~step:steps ~node:st.st_node
                ~at_decision:false ~taint:out_taint ~srcs:out_src
                ~notice:(denial_text cfg ~taint:out_taint);
              Final (denied cfg ~taint:out_taint steps)
            end)
    | Graph.Halt_violation n ->
        Emit.box cfg.emit ~step:steps ~node:st.st_node;
        Emit.condemn cfg.emit ~step:steps ~node:st.st_node ~at_decision:false
          ~taint:Iset.empty ~srcs:Var.Set.empty ~notice:n;
        Final (reply (Mechanism.Denied n) steps)
  with Expr.Runtime_fault e ->
    Final (reply (Mechanism.Failed (Expr.error_message e)) steps)

let mechanism cfg g =
  Mechanism.make
    ~name:(Printf.sprintf "%s(%s)" (mode_name cfg.mode) g.Graph.name)
    ~arity:g.Graph.arity
    (fun a -> run cfg g a)

let mechanism_of ?fuel ?cost ?hook ?emit ~mode policy g =
  mechanism (config ?fuel ?cost ?hook ?emit ~mode policy) g
