module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Program = Secpol_core.Program
module Graph = Secpol_flowgraph.Graph
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Interp = Secpol_flowgraph.Interp
module Emit = Secpol_flowgraph.Emit

type variant = Untimed | Timed_variant

(* Register layout of the instrumented flowchart. Original registers keep
   their indices; surveillance variables live in fresh registers above
   them. *)
type layout = { first_free : int; arity : int }

let layout_of g =
  { first_free = Graph.max_reg g + 1; arity = g.Graph.arity }

let sv lay = function
  | Var.Reg j -> Var.Reg (lay.first_free + j)
  | Var.Input i -> Var.Reg (lay.first_free + lay.first_free + i)
  | Var.Out -> Var.Reg (lay.first_free + lay.first_free + lay.arity)

let pc lay = Var.Reg (lay.first_free + lay.first_free + lay.arity + 1)

let surveillance_reg g v = sv (layout_of g) v
let pc_reg g = pc (layout_of g)

(* w̄1 ∪ ... ∪ w̄p ∪ extra, as a flowchart expression over taint registers. *)
let taint_union lay vs extra =
  Var.Set.fold
    (fun w acc -> Expr.Bor (Expr.Var (sv lay w), acc))
    vs extra

(* t ⊆ J encoded as (t | maskJ) = maskJ. *)
let subset_test mask t = Expr.Cmp (Expr.Eq, Expr.Bor (t, Expr.Const mask), Expr.Const mask)

let block_size variant = function
  | Graph.Start _ -> 1 (* + arity init assignments, accounted separately *)
  | Graph.Assign _ -> 2
  | Graph.Decision _ -> ( match variant with Untimed -> 2 | Timed_variant -> 3)
  | Graph.Halt -> 2
  | Graph.Halt_violation _ -> 1

let instrument variant ~allowed g =
  if g.Graph.arity > Iset.max_index then
    invalid_arg "Instrument.instrument: arity exceeds taint mask width";
  Array.iter
    (function
      | Graph.Halt_violation _ ->
          invalid_arg "Instrument.instrument: graph already instrumented"
      | _ -> ())
    g.Graph.nodes;
  let lay = layout_of g in
  let mask = Iset.to_mask allowed in
  let n = Array.length g.Graph.nodes in
  (* Block base offsets; the start block also carries the k taint
     initializations of rule (1). *)
  let base = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun i node ->
      base.(i) <- !total;
      total := !total + block_size variant node;
      match node with
      | Graph.Start _ -> total := !total + g.Graph.arity
      | _ -> ())
    g.Graph.nodes;
  let viol = !total in
  let nodes = Array.make (!total + 1) Graph.Halt in
  nodes.(viol) <- Graph.Halt_violation Dynamic.notice;
  let entry_of i = base.(i) in
  Array.iteri
    (fun i node ->
      let b = base.(i) in
      match node with
      | Graph.Start next ->
          (* start -> x̄0 := {0} -> ... -> x̄k-1 := {k-1} -> body *)
          let k = g.Graph.arity in
          nodes.(b) <- Graph.Start (if k > 0 then b + 1 else entry_of next);
          for j = 0 to k - 1 do
            let succ = if j = k - 1 then entry_of next else b + 2 + j in
            nodes.(b + 1 + j) <-
              Graph.Assign
                (sv lay (Var.Input j), Expr.Const (Iset.to_mask (Iset.singleton j)), succ)
          done
      | Graph.Assign (v, e, next) ->
          (* v̄ := Ē ∪ C̄ ; v := E *)
          nodes.(b) <-
            Graph.Assign
              (sv lay v, taint_union lay (Expr.vars e) (Expr.Var (pc lay)), b + 1);
          nodes.(b + 1) <- Graph.Assign (v, e, entry_of next)
      | Graph.Decision (p, if_true, if_false) -> (
          let test_taint = taint_union lay (Expr.pred_vars p) (Expr.Var (pc lay)) in
          match variant with
          | Untimed ->
              (* C̄ := C̄ ∪ w̄ ; original decision *)
              nodes.(b) <- Graph.Assign (pc lay, test_taint, b + 1);
              nodes.(b + 1) <-
                Graph.Decision (p, entry_of if_true, entry_of if_false)
          | Timed_variant ->
              (* if w̄ ∪ C̄ ⊆ J then (C̄ := ...; original decision)
                 else halt with a violation notice — before the test runs. *)
              nodes.(b) <- Graph.Decision (subset_test mask test_taint, b + 1, viol);
              nodes.(b + 1) <- Graph.Assign (pc lay, test_taint, b + 2);
              nodes.(b + 2) <-
                Graph.Decision (p, entry_of if_true, entry_of if_false))
      | Graph.Halt ->
          (* if ȳ ∪ C̄ ⊆ J then halt else violation *)
          let out_taint =
            Expr.Bor (Expr.Var (sv lay Var.Out), Expr.Var (pc lay))
          in
          nodes.(b) <- Graph.Decision (subset_test mask out_taint, b + 1, viol);
          nodes.(b + 1) <- Graph.Halt
      | Graph.Halt_violation _ -> assert false)
    g.Graph.nodes;
  Graph.make
    ~name:
      (Printf.sprintf "%s-instrumented(%s)"
         (match variant with Untimed -> "surv" | Timed_variant -> "timed")
         g.Graph.name)
    ~arity:g.Graph.arity ~entry:(entry_of g.Graph.entry) nodes

(* Trace adapter: the instrumented flowchart manipulates surveillance
   variables as ordinary integer registers, so its trace arrives as plain
   [assign] events. Invert the register layout to report them as the
   [taint]/[pc] events the original program's observer expects: an
   assignment to the register holding v̄ becomes a taint event for [v], one
   to the C̄ register becomes a pc event. Source sets are not recoverable
   from the rewritten flowchart and are reported empty. *)
let emit_adapter g target =
  match target with
  | Emit.Null -> Emit.none
  | Emit.Sink cb ->
      let lay = layout_of g in
      let ff = lay.first_free in
      let taint_base = ff + ff in
      let out_slot = taint_base + lay.arity in
      let pc_slot = out_slot + 1 in
      Emit.Sink
        {
          Emit.box = cb.Emit.box;
          assign =
            (fun ~step ~node ~var ~value ->
              match var with
              | Var.Reg k when k >= ff && k <= pc_slot && value >= 0 ->
                  if k = pc_slot then
                    cb.Emit.pc ~step ~node ~pc:(Iset.of_mask value)
                      ~srcs:Var.Set.empty
                  else
                    let v =
                      if k < taint_base then Var.Reg (k - ff)
                      else if k < out_slot then Var.Input (k - taint_base)
                      else Var.Out
                    in
                    cb.Emit.taint ~step ~node ~var:v ~taint:(Iset.of_mask value)
                      ~srcs:Var.Set.empty
              | Var.Reg _ | Var.Input _ | Var.Out ->
                  cb.Emit.assign ~step ~node ~var ~value);
          taint = cb.Emit.taint;
          pc = cb.Emit.pc;
          condemn = cb.Emit.condemn;
        }

let mechanism ?fuel ?emit variant ~policy g =
  let allowed =
    match Policy.allowed_indices policy with
    | Some j -> j
    | None ->
        invalid_arg
          (Printf.sprintf
             "Instrument.mechanism: surveillance is defined for allow(...) \
              policies, got %s"
             (Policy.name policy))
  in
  let emit = Option.map (emit_adapter g) emit in
  let m = Interp.graph_mechanism ?fuel ?emit (instrument variant ~allowed g) in
  (* Fail-secure parity with Dynamic: a monitor that exhausts its step
     budget reports the fuel-watchdog violation notice, not a hang — both
     constructions stay total functions into E u F and keep agreeing
     pointwise. *)
  Mechanism.make ~name:m.Mechanism.name ~arity:m.Mechanism.arity (fun a ->
      let r = m.Mechanism.respond a in
      match r.Mechanism.response with
      | Mechanism.Hung -> { r with Mechanism.response = Mechanism.Denied Dynamic.fuel_notice }
      | _ -> r)
