(** Compile-time certification of information flow (Section 5).

    Section 5 observes that static flow analysis — "closely related to the
    flow analysis performed by compilers" — can enforce a policy before the
    program runs, provided the analysis tracks flows through the program
    counter as well as through data (otherwise negative inference leaks).
    This is the Denning–Denning certification semantics, implemented over
    the structured AST.

    The analysis computes, for every variable, a conservative taint: the set
    of inputs whose value may influence it on {e some} execution. Branches
    are analyzed in a context carrying the test's taint; the two arms'
    results are joined pointwise. Loops iterate to a fixpoint (the taint
    lattice is finite, so this terminates).

    A program certifies for [allow(J)] iff the output variable's final taint
    is contained in [J]. Certification is conservative: a certified program
    leaks nothing (for terminating programs with unobservable running time),
    but non-certified programs may still be perfectly innocent — the E9
    experiment measures that gap against the dynamic mechanisms. *)

(** A located reason certification failed: disallowed input [cx_input]
    taints the output, exhibited at the source span of an assignment that
    carries it (output-targeted preferred) or of the test that reads it —
    when the AST carries {!Secpol_flowgraph.Ast.At} spans (parser-produced
    programs do; hand-built ones may not). *)
type counterexample = {
  cx_input : int;
  cx_span : Secpol_flowgraph.Span.t option;
}

type report = {
  certified : bool;
  out_taint : Secpol_core.Iset.t;  (** final taint of the output variable *)
  env : Secpol_core.Iset.t Secpol_flowgraph.Var.Map.t;
      (** final taint of every variable *)
  counterexamples : counterexample list;
      (** one per offending input, ascending; empty iff [certified] *)
}

val analyze :
  ?presimplify:bool -> allowed:Secpol_core.Iset.t -> Secpol_flowgraph.Ast.prog -> report
(** With [~presimplify:true] the program's expressions are algebraically
    simplified first, so dead operands ([x * 0], equal-armed selects) stop
    tainting the analysis — strictly more programs certify, at zero
    soundness cost since simplification preserves meaning. Default
    [false]: the plain Denning-style analysis. *)

val certified : policy:Secpol_core.Policy.t -> Secpol_flowgraph.Ast.prog -> bool
(** @raise Invalid_argument on a non-[allow] policy. *)

val mechanism :
  ?fuel:int ->
  policy:Secpol_core.Policy.t ->
  Secpol_flowgraph.Ast.prog ->
  Secpol_core.Mechanism.t
(** The compile-time protection mechanism: if the program certifies, run it
    unmodified (zero runtime overhead — the point of static enforcement);
    otherwise refuse every input with a violation notice. Either way the
    mechanism's behaviour is fixed at "compile time", so it is trivially
    sound; completeness is all-or-nothing per (program, policy). *)
