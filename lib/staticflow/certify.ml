module Iset = Secpol_core.Iset
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Ast = Secpol_flowgraph.Ast
module Span = Secpol_flowgraph.Span
module Interp = Secpol_flowgraph.Interp

type env = Iset.t Var.Map.t

let taint_of env v =
  match Var.Map.find_opt v env with Some t -> t | None -> Iset.empty

let expr_taint env e =
  Var.Set.fold (fun v acc -> Iset.union (taint_of env v) acc) (Expr.vars e) Iset.empty

let pred_taint env p =
  Var.Set.fold
    (fun v acc -> Iset.union (taint_of env v) acc)
    (Expr.pred_vars p) Iset.empty

let merge (a : env) (b : env) : env =
  Var.Map.union (fun _ ta tb -> Some (Iset.union ta tb)) a b

let env_equal (a : env) (b : env) = Var.Map.equal Iset.equal a b

(* Flow-sensitive abstract interpretation over the finite taint lattice.
   [pc] carries the taint of every enclosing test. *)
let rec exec (pc : Iset.t) (env : env) = function
  | Ast.Skip -> env
  | Ast.Assign (v, e) ->
      Var.Map.add v (Iset.union (expr_taint env e) pc) env
  | Ast.Seq l -> List.fold_left (exec pc) env l
  | Ast.If (p, a, b) ->
      let pc' = Iset.union pc (pred_taint env p) in
      merge (exec pc' env a) (exec pc' env b)
  | Ast.While (p, body) ->
      (* Iterate to fixpoint; the loop may run zero times, so the result is
         always joined with the incoming environment. *)
      let rec fix env =
        let pc' = Iset.union pc (pred_taint env p) in
        let env' = merge env (exec pc' env body) in
        if env_equal env env' then env' else fix env'
      in
      fix env
  | Ast.At (_, s) -> exec pc env s

let initial_env arity : env =
  let rec add i env =
    if i >= arity then env
    else add (i + 1) (Var.Map.add (Var.Input i) (Iset.singleton i) env)
  in
  add 0 Var.Map.empty

type counterexample = { cx_input : int; cx_span : Span.t option }

type report = {
  certified : bool;
  out_taint : Iset.t;
  env : env;
  counterexamples : counterexample list;
}

(* Re-run the abstract interpretation carrying the innermost [At] span, and
   record where each input's taint surfaces: at an assignment whose
   right-hand side (plus context) carries it — output-targeted preferred —
   or at the test that reads it. First location with a span wins within
   each category. *)
let locate (p : Ast.prog) =
  let out_assigns = Hashtbl.create 8
  and any_assigns = Hashtbl.create 8
  and decisions = Hashtbl.create 8 in
  let record tbl j sp =
    match Hashtbl.find_opt tbl j with
    | None -> Hashtbl.add tbl j sp
    | Some None when sp <> None -> Hashtbl.replace tbl j sp
    | Some _ -> ()
  in
  let record_set tbl t sp = Iset.fold (fun j () -> record tbl j sp) t () in
  let rec go sp pc env = function
    | Ast.Skip -> env
    | Ast.Assign (v, e) ->
        let t = Iset.union (expr_taint env e) pc in
        record_set (if v = Var.Out then out_assigns else any_assigns) t sp;
        Var.Map.add v t env
    | Ast.Seq l -> List.fold_left (go sp pc) env l
    | Ast.If (p, a, b) ->
        let tt = pred_taint env p in
        record_set decisions tt sp;
        let pc' = Iset.union pc tt in
        merge (go sp pc' env a) (go sp pc' env b)
    | Ast.While (p, body) ->
        let rec fix env =
          let tt = pred_taint env p in
          record_set decisions tt sp;
          let env' = merge env (go sp (Iset.union pc tt) env body) in
          if env_equal env env' then env' else fix env'
        in
        fix env
    | Ast.At (s, stmt) -> go (Some s) pc env stmt
  in
  ignore (go None Iset.empty (initial_env p.Ast.arity) p.Ast.body);
  fun j ->
    match
      ( Hashtbl.find_opt out_assigns j,
        Hashtbl.find_opt any_assigns j,
        Hashtbl.find_opt decisions j )
    with
    | Some sp, _, _ | None, Some sp, _ | None, None, Some sp -> sp
    | None, None, None -> None

let analyze ?(presimplify = false) ~allowed (p : Ast.prog) =
  let p = if presimplify then Ast.simplify_exprs p else p in
  let env = exec Iset.empty (initial_env p.Ast.arity) p.Ast.body in
  let out_taint = taint_of env Var.Out in
  let certified = Iset.subset out_taint allowed in
  let counterexamples =
    if certified then []
    else
      let where = locate p in
      List.rev
        (Iset.fold
           (fun j acc -> { cx_input = j; cx_span = where j } :: acc)
           (Iset.diff out_taint allowed) [])
  in
  { certified; out_taint; env; counterexamples }

let allowed_of policy =
  match Policy.allowed_indices policy with
  | Some j -> j
  | None ->
      invalid_arg
        (Printf.sprintf
           "Certify: certification is defined for allow(...) policies, got %s"
           (Policy.name policy))

let certified ~policy p = (analyze ~allowed:(allowed_of policy) p).certified

let mechanism ?fuel ~policy (p : Ast.prog) =
  let name = Printf.sprintf "certified(%s)" p.Ast.name in
  if certified ~policy p then
    Mechanism.rename name (Mechanism.of_program (Interp.ast_program ?fuel p))
  else
    Mechanism.rename name (Mechanism.pull_the_plug p.Ast.arity)
