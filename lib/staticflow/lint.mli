(** A witness-carrying variant of the flowchart dataflow analysis
    ({!Dataflow}), for diagnostics rather than enforcement.

    {!Dataflow.analyze} answers {e whether} a flowchart is certifiable under
    [allow(J)]; this module answers {e why not}. Every taint element is
    paired with a provenance chain of program points — the sequence of
    assignments (explicit flows) and decisions (implicit flows) by which a
    disallowed input reaches the output — and each chain step carries the
    source span that {!Secpol_flowgraph.Compile} threaded onto the node, so
    findings point at source lines.

    Four rules:
    - [Explicit_flow]: a disallowed input reaches the output through
      assignments alone.
    - [Implicit_flow]: the witness chain passes through a decision box — the
      input influenced {e which} assignments ran (Section 5's control-flow
      channel).
    - [Termination_channel]: the input decides {e whether} (or at which halt
      box) the program halts: either a halt box's control context is tainted
      (an error — certification fails), or a tainted decision has a
      successor that cannot reach any halt box (a warning — the halt-taint
      check itself is blind to it, but observing non-termination reveals the
      input; the paper's Example 9 channel).
    - [Imprecision]: a violation that vanishes when the program is constant
      folded ({!Secpol_flowgraph.Ast.simplify_exprs}) and dead branches are
      pruned ({!Secpol_flowgraph.Ast.prune_dead_branches}) — the failure may
      be an artifact of dead code rather than a real flow. Reported as a
      warning alongside the original error, so the verdict (and exit code)
      still agrees with {!Dataflow.certified}. *)

module Iset = Secpol_core.Iset
module Span = Secpol_flowgraph.Span
module Ast = Secpol_flowgraph.Ast
module Graph = Secpol_flowgraph.Graph

type kind = Explicit | Implicit

type step = {
  node : int;  (** flowchart node index *)
  kind : kind;
  label : string;  (** rendered statement, e.g. ["y := x0 + 1"] *)
  span : Span.t option;
}

type rule = Explicit_flow | Implicit_flow | Termination_channel | Imprecision

type severity = Error | Warning

type finding = {
  rule : rule;
  severity : severity;
  input : int;  (** offending input index *)
  span : Span.t option;  (** primary location: the last located step *)
  witness : step list;  (** provenance chain, in flow order *)
  message : string;
}

type report = {
  program : string;
  allowed : Iset.t;
  certified : bool;
      (** agrees with {!Dataflow.certified}: no [Error] findings *)
  findings : finding list;  (** errors first, then warnings *)
}

val check : ?prog:Ast.prog -> allowed:Iset.t -> Graph.t -> report
(** Lint [g] against [allow(allowed)]. When [prog] (the AST [g] was
    compiled from) is supplied, the imprecision pass re-analyzes its
    constant-folded, dead-branch-pruned form and flags violations that
    disappear. *)

val check_policy : ?prog:Ast.prog -> policy:Secpol_core.Policy.t -> Graph.t -> report
(** @raise Invalid_argument on a non-[allow] policy. *)

val rule_name : rule -> string
(** Kebab-case, as used in JSON: ["explicit-flow"], ["implicit-flow"],
    ["termination-channel"], ["imprecision"]. *)

val severity_name : severity -> string

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

(** Minimal JSON tree — hand-rolled; the toolchain has no JSON library and
    the linter must not grow dependencies. [render] and [parse] round-trip:
    [parse (render v) = Ok v]. *)
module Json : sig
  type value =
    | Null
    | Bool of bool
    | Int of int
    | String of string
    | List of value list
    | Obj of (string * value) list

  val render : value -> string
  val parse : string -> (value, string) result
  val member : string -> value -> value option
  (** Field lookup; [None] on missing field or non-object. *)
end

val json_of_finding : finding -> Json.value
(** One finding, as embedded in {!to_json}'s ["findings"] list — also
    reused by {!Certifier} witnesses. *)

val to_json : report -> Json.value
val to_json_string : report -> string
