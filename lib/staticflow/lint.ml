module Iset = Secpol_core.Iset
module Policy = Secpol_core.Policy
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Span = Secpol_flowgraph.Span
module Ast = Secpol_flowgraph.Ast
module Graph = Secpol_flowgraph.Graph
module Compile = Secpol_flowgraph.Compile
module Graphalgo = Secpol_flowgraph.Graphalgo

type kind = Explicit | Implicit

type step = { node : int; kind : kind; label : string; span : Span.t option }

type rule = Explicit_flow | Implicit_flow | Termination_channel | Imprecision

type severity = Error | Warning

type finding = {
  rule : rule;
  severity : severity;
  input : int;
  span : Span.t option;
  witness : step list;
  message : string;
}

type report = {
  program : string;
  allowed : Iset.t;
  certified : bool;
  findings : finding list;
}

let rule_name = function
  | Explicit_flow -> "explicit-flow"
  | Implicit_flow -> "implicit-flow"
  | Termination_channel -> "termination-channel"
  | Imprecision -> "imprecision"

let severity_name = function Error -> "error" | Warning -> "warning"

(* --- The witness-carrying dataflow ------------------------------------ *)

module Imap = Map.Make (Int)

(* A witness map binds each input index whose taint reaches this point to
   the chain of steps it travelled. The fixpoint below is the same maximal
   fixed point as {!Dataflow.analyze} on the map *domains*; chains are
   "sticky" — once an index arrives, its first chain is kept — so the
   domains grow monotonically and convergence is checked on domains only. *)
type wmap = step list Imap.t

let wunion (a : wmap) (b : wmap) = Imap.union (fun _ x _ -> Some x) a b

let wdom_equal (a : wmap) (b : wmap) = Imap.equal (fun _ _ -> true) a b

let extend step (m : wmap) = Imap.map (fun chain -> chain @ [ step ]) m

type env = wmap Var.Map.t

let wmap_of (env : env) v =
  match Var.Map.find_opt v env with Some m -> m | None -> Imap.empty

let vars_wmap env vs =
  Var.Set.fold (fun v acc -> wunion acc (wmap_of env v)) vs Imap.empty

let env_union (a : env) (b : env) =
  Var.Map.union (fun _ ma mb -> Some (wunion ma mb)) a b

let env_dom_equal (a : env) (b : env) = Var.Map.equal wdom_equal a b

let node_label g i =
  match g.Graph.nodes.(i) with
  | Graph.Assign (v, e, _) ->
      Format.asprintf "%a := %a" Var.pp v Expr.pp e
  | Graph.Decision (p, _, _) -> Format.asprintf "if %a" Expr.pp_pred p
  | Graph.Start _ -> "start"
  | Graph.Halt -> "halt"
  | Graph.Halt_violation _ -> "halt-violation"

let make_step g i kind =
  { node = i; kind; label = node_label g i; span = Graph.span g i }

let last_span (witness : step list) =
  List.fold_left
    (fun acc (s : step) -> match s.span with Some _ as sp -> sp | None -> acc)
    None witness

let has_implicit (witness : step list) =
  List.exists (fun (s : step) -> s.kind = Implicit) witness

(* Mirrors Dataflow.analyze, with witness maps in place of Isets. Returns
   (out_wmap, pc_wmap, test_wmap) observations for the findings pass. *)
let solve g =
  let n = Graph.node_count g in
  let reach = Graph.reachable g in
  let ipd = Graphalgo.immediate_postdominator g in
  let preds = Graphalgo.predecessors g in
  let decisions =
    List.filter
      (fun i ->
        reach.(i)
        && match g.Graph.nodes.(i) with Graph.Decision _ -> true | _ -> false)
      (List.init n Fun.id)
  in
  let regions = List.map (fun d -> (d, Dataflow.region g d ipd.(d))) decisions in
  let initial : env =
    let rec add i env =
      if i >= g.Graph.arity then env
      else add (i + 1) (Var.Map.add (Var.Input i) (Imap.singleton i []) env)
    in
    add 0 Var.Map.empty
  in
  let in_env = Array.make n Var.Map.empty in
  in_env.(g.Graph.entry) <- initial;
  let pc = Array.make n Imap.empty in
  let test_wmap d =
    match g.Graph.nodes.(d) with
    | Graph.Decision (p, _, _) -> vars_wmap in_env.(d) (Expr.pred_vars p)
    | _ -> assert false
  in
  let out_env i =
    match g.Graph.nodes.(i) with
    | Graph.Assign (v, e, _) ->
        let sources = wunion (vars_wmap in_env.(i) (Expr.vars e)) pc.(i) in
        Var.Map.add v (extend (make_step g i Explicit) sources) in_env.(i)
    | Graph.Start _ | Graph.Decision _ | Graph.Halt | Graph.Halt_violation _ ->
        in_env.(i)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d, in_region) ->
        let chains = extend (make_step g d Implicit) (test_wmap d) in
        for i = 0 to n - 1 do
          if in_region.(i) then begin
            let merged = wunion pc.(i) chains in
            if not (wdom_equal merged pc.(i)) then begin
              pc.(i) <- merged;
              changed := true
            end
          end
        done)
      regions;
    for i = 0 to n - 1 do
      if reach.(i) && i <> g.Graph.entry then begin
        let joined =
          List.fold_left
            (fun acc p -> if reach.(p) then env_union acc (out_env p) else acc)
            Var.Map.empty preds.(i)
        in
        let merged = env_union in_env.(i) joined in
        if not (env_dom_equal merged in_env.(i)) then begin
          in_env.(i) <- merged;
          changed := true
        end
      end
    done
  done;
  (reach, in_env, pc, test_wmap)

(* --- Findings ---------------------------------------------------------- *)

let dedup_findings findings =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun f ->
      let key = (f.rule, f.input) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    findings
  |> List.stable_sort (fun a b -> compare a.input b.input)

let check ?prog ~allowed g =
  let reach, in_env, pc, test_wmap = solve g in
  let halts =
    List.filter
      (fun h -> reach.(h) && g.Graph.nodes.(h) = Graph.Halt)
      (Graph.halt_nodes g)
  in
  let flow_findings =
    List.concat_map
      (fun h ->
        Imap.fold
          (fun j chain acc ->
            if Iset.mem j allowed then acc
            else
              let rule =
                if has_implicit chain then Implicit_flow else Explicit_flow
              in
              let via =
                if rule = Implicit_flow then
                  " (through the outcome of a tainted test)"
                else ""
              in
              {
                rule;
                severity = Error;
                input = j;
                span = last_span chain;
                witness = chain;
                message =
                  Printf.sprintf "input %d flows to the output%s" j via;
              }
              :: acc)
          (wmap_of in_env.(h) Var.Out)
          [])
      halts
  in
  let halt_pc_findings =
    List.concat_map
      (fun h ->
        let out_dom = wmap_of in_env.(h) Var.Out in
        Imap.fold
          (fun j chain acc ->
            if Iset.mem j allowed || Imap.mem j out_dom then acc
            else
              {
                rule = Termination_channel;
                severity = Error;
                input = j;
                span = last_span chain;
                witness = chain;
                message =
                  Printf.sprintf
                    "which halt the program reaches depends on input %d" j;
              }
              :: acc)
          pc.(h) [])
      halts
  in
  (* A tainted decision with a successor that cannot reach any halt box:
     the halt-taint check above never sees that path (there is no halt on
     it), yet observing non-termination reveals the test's inputs.
     Reachability here is predicate-aware — [while true] compiles to a
     decision whose exit edge exists structurally but can never be taken, so
     constant tests contribute only their live edge. *)
  let crh =
    let n = Graph.node_count g in
    let live_successors i =
      match g.Graph.nodes.(i) with
      | Graph.Decision (p, a, b) -> (
          match Expr.simplify_pred p with
          | Expr.True -> [ a ]
          | Expr.False -> [ b ]
          | _ -> Graph.successors g i)
      | _ -> Graph.successors g i
    in
    let sem_preds = Array.make n [] in
    for i = 0 to n - 1 do
      List.iter (fun s -> sem_preds.(s) <- i :: sem_preds.(s)) (live_successors i)
    done;
    let ok = Array.make n false in
    let rec mark i =
      if not ok.(i) then begin
        ok.(i) <- true;
        List.iter mark sem_preds.(i)
      end
    in
    List.iter mark (Graph.halt_nodes g);
    ok
  in
  let spin_findings =
    List.concat
      (List.init (Graph.node_count g) (fun d ->
           match g.Graph.nodes.(d) with
           | Graph.Decision _
             when reach.(d)
                  && List.exists (fun s -> not crh.(s)) (Graph.successors g d)
             ->
               let chains = extend (make_step g d Implicit) (test_wmap d) in
               Imap.fold
                 (fun j chain acc ->
                   if Iset.mem j allowed then acc
                   else
                     {
                       rule = Termination_channel;
                       severity = Warning;
                       input = j;
                       span = last_span chain;
                       witness = chain;
                       message =
                         Printf.sprintf
                           "input %d can steer execution onto a path that \
                            never halts (invisible to halt-taint \
                            certification)"
                           j;
                     }
                     :: acc)
                 chains []
           | _ -> []))
  in
  let errors = dedup_findings (flow_findings @ halt_pc_findings) in
  (* Spin warnings only for indices not already reported as
     termination-channel errors. *)
  let spin =
    dedup_findings
      (List.filter
         (fun w ->
           not
             (List.exists
                (fun e -> e.rule = Termination_channel && e.input = w.input)
                errors))
         spin_findings)
  in
  (* Imprecision pass: does the violation survive constant folding and
     dead-branch pruning? Needs the AST; graph-only callers skip it. *)
  let imprecision =
    match (prog, errors) with
    | None, _ | _, [] -> []
    | Some p, _ -> (
        match
          Compile.compile (Ast.prune_dead_branches (Ast.simplify_exprs p))
        with
        | exception Invalid_argument _ -> []
        | refined ->
            let r = Dataflow.analyze ~allowed refined in
            let refined_leak =
              List.fold_left
                (fun acc (_, t) -> Iset.union acc t)
                Iset.empty r.Dataflow.halt_taints
            in
            dedup_findings
              (List.filter_map
                 (fun e ->
                   if Iset.mem e.input refined_leak then None
                   else
                     Some
                       {
                         rule = Imprecision;
                         severity = Warning;
                         input = e.input;
                         span = e.span;
                         witness = [];
                         message =
                           Printf.sprintf
                             "the flow from input %d disappears after \
                              constant folding and dead-branch pruning; the \
                              violation may be an artifact of dead code"
                             e.input;
                       })
                 errors))
  in
  {
    program = g.Graph.name;
    allowed;
    certified = errors = [];
    findings = errors @ spin @ imprecision;
  }

let check_policy ?prog ~policy g =
  match Policy.allowed_indices policy with
  | Some allowed -> check ?prog ~allowed g
  | None ->
      invalid_arg
        (Printf.sprintf
           "Lint: linting is defined for allow(...) policies, got %s"
           (Policy.name policy))

(* --- Text rendering ---------------------------------------------------- *)

let pp_step ppf (s : step) =
  let where =
    match s.span with
    | Some sp -> Printf.sprintf "line %d" (Span.line sp)
    | None -> Printf.sprintf "node %d" s.node
  in
  let kind = match s.kind with Explicit -> "explicit" | Implicit -> "implicit" in
  Format.fprintf ppf "%s (%s, %s)" s.label kind where

let pp_finding ppf f =
  let loc =
    match f.span with
    | Some sp -> Format.asprintf "%a: " Span.pp sp
    | None -> ""
  in
  Format.fprintf ppf "@[<v 2>%s[%s] %s%s" (severity_name f.severity)
    (rule_name f.rule) loc f.message;
  if f.witness <> [] then begin
    Format.fprintf ppf "@,x%d (input)" f.input;
    List.iter (fun s -> Format.fprintf ppf "@,-> %a" pp_step s) f.witness
  end;
  Format.fprintf ppf "@]"

let pp_report ppf r =
  let verdict = if r.certified then "certified" else "NOT certified" in
  Format.fprintf ppf "@[<v>%s: %s for allow(%a)" r.program verdict Iset.pp
    r.allowed;
  List.iter (fun f -> Format.fprintf ppf "@,%a" pp_finding f) r.findings;
  Format.fprintf ppf "@]"

(* --- JSON -------------------------------------------------------------- *)

module Json = struct
  type value =
    | Null
    | Bool of bool
    | Int of int
    | String of string
    | List of value list
    | Obj of (string * value) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec render = function
    | Null -> "null"
    | Bool b -> string_of_bool b
    | Int n -> string_of_int n
    | String s -> "\"" ^ escape s ^ "\""
    | List l -> "[" ^ String.concat "," (List.map render l) ^ "]"
    | Obj fields ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ render v)
               fields)
        ^ "}"

  exception Parse_error of string

  (* Recursive-descent parser over a string cursor; enough JSON to read the
     linter's own output back (the test suite round-trips through it). *)
  let parse s =
    let pos = ref 0 in
    let len = String.length s in
    let fail m = raise (Parse_error (Printf.sprintf "%s at offset %d" m !pos)) in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < len
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if peek () = Some c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let n = String.length word in
      if !pos + n <= len && String.sub s !pos n = word then begin
        pos := !pos + n;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (if !pos >= len then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char buf '"'
                 | '\\' -> Buffer.add_char buf '\\'
                 | '/' -> Buffer.add_char buf '/'
                 | 'n' -> Buffer.add_char buf '\n'
                 | 'r' -> Buffer.add_char buf '\r'
                 | 't' -> Buffer.add_char buf '\t'
                 | 'b' -> Buffer.add_char buf '\b'
                 | 'f' -> Buffer.add_char buf '\012'
                 | 'u' ->
                     if !pos + 4 >= len then fail "truncated \\u escape"
                     else begin
                       let hex = String.sub s (!pos + 1) 4 in
                       let code =
                         try int_of_string ("0x" ^ hex)
                         with _ -> fail "bad \\u escape"
                       in
                       (* The emitter only writes \u00XX control codes. *)
                       if code > 0xff then fail "unsupported \\u escape"
                       else Buffer.add_char buf (Char.chr code);
                       pos := !pos + 4
                     end
                 | c -> fail (Printf.sprintf "bad escape %C" c));
              incr pos;
              go ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> String (parse_string ())
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let items = ref [ parse_value () ] in
            skip_ws ();
            while peek () = Some ',' do
              incr pos;
              items := parse_value () :: !items;
              skip_ws ()
            done;
            expect ']';
            List (List.rev !items)
          end
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let fields = ref [ field () ] in
            skip_ws ();
            while peek () = Some ',' do
              incr pos;
              fields := field () :: !fields;
              skip_ws ()
            done;
            expect '}';
            Obj (List.rev !fields)
          end
      | Some ('-' | '0' .. '9') ->
          let start = !pos in
          if peek () = Some '-' then incr pos;
          while
            match peek () with Some ('0' .. '9') -> true | _ -> false
          do
            incr pos
          done;
          if !pos = start || (s.[start] = '-' && !pos = start + 1) then
            fail "bad number"
          else Int (int_of_string (String.sub s start (!pos - start)))
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> len then fail "trailing input";
      v
    with
    | v -> Ok v
    | exception Parse_error m -> Error m

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

let json_of_span = function
  | None -> Json.Null
  | Some sp ->
      Json.Obj
        [
          ("start_line", Json.Int sp.Span.start_line);
          ("start_col", Json.Int sp.Span.start_col);
          ("end_line", Json.Int sp.Span.end_line);
          ("end_col", Json.Int sp.Span.end_col);
        ]

let json_of_step s =
  Json.Obj
    [
      ("node", Json.Int s.node);
      ( "kind",
        Json.String (match s.kind with Explicit -> "explicit" | Implicit -> "implicit")
      );
      ("label", Json.String s.label);
      ("span", json_of_span s.span);
    ]

let json_of_finding f =
  Json.Obj
    [
      ("rule", Json.String (rule_name f.rule));
      ("severity", Json.String (severity_name f.severity));
      ("input", Json.Int f.input);
      ("span", json_of_span f.span);
      ("message", Json.String f.message);
      ("witness", Json.List (List.map json_of_step f.witness));
    ]

let to_json r =
  Json.Obj
    [
      ("program", Json.String r.program);
      ( "allowed",
        Json.List (List.map (fun i -> Json.Int i) (Iset.to_list r.allowed)) );
      ("certified", Json.Bool r.certified);
      ("findings", Json.List (List.map json_of_finding r.findings));
    ]

let to_json_string r = Json.render (to_json r)
