module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Lattice = Secpol_core.Lattice
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Graph = Secpol_flowgraph.Graph
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic

type env = Iset.t Var.Map.t

let taint_of env v =
  match Var.Map.find_opt v env with Some t -> t | None -> Iset.empty

let vars_taint env vs =
  Var.Set.fold (fun v acc -> Iset.union (taint_of env v) acc) vs Iset.empty

let merge (a : env) (b : env) : env =
  Var.Map.union (fun _ ta tb -> Some (Iset.union ta tb)) a b

let env_equal (a : env) (b : env) = Var.Map.equal Iset.equal a b

(* --- fault channels ------------------------------------------------------

   Variables whose value can decide WHETHER expression evaluation faults:
   the variables of every divisor or modulus subexpression (a constant
   non-zero divisor cannot fault; a constant zero always faults, so fault
   occurrence carries no data — reaching the box at all is the control
   channel, accounted separately). A [Cond] evaluates its predicate and
   both arms, so all three contribute. *)
let rec fault_vars (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Var _ -> Var.Set.empty
  | Expr.Neg a | Expr.Bnot a -> fault_vars a
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b)
  | Expr.Bor (a, b) | Expr.Band (a, b) ->
      Var.Set.union (fault_vars a) (fault_vars b)
  | Expr.Div (a, b) | Expr.Mod (a, b) ->
      let sub = Var.Set.union (fault_vars a) (fault_vars b) in
      (match b with
      | Expr.Const _ -> sub
      | _ -> Var.Set.union sub (Expr.vars b))
  | Expr.Cond (p, a, b) ->
      Var.Set.union (fault_pred_vars p)
        (Var.Set.union (fault_vars a) (fault_vars b))

and fault_pred_vars (p : Expr.pred) =
  match p with
  | Expr.True | Expr.False -> Var.Set.empty
  | Expr.Cmp (_, a, b) -> Var.Set.union (fault_vars a) (fault_vars b)
  | Expr.And (a, b) | Expr.Or (a, b) ->
      Var.Set.union (fault_pred_vars a) (fault_pred_vars b)
  | Expr.Not a -> fault_pred_vars a

(* --- the collecting semantics --------------------------------------------

   A maximal fixed point over high-water transfer functions with a MONOTONE
   program-counter taint: an assignment's abstract taint joins the
   right-hand side, the control context AND the target's previous taint; a
   decision's test taint joins into the pc of every successor and is never
   restored. On any single run, every dynamic mode's taint state is
   pointwise below this (Scoped <= Surveillance <= High_water on each run,
   and the high-water run taint of each variable is below the MFP value at
   the corresponding node), so one analysis over-approximates all four
   monitors at once. {!Dataflow}'s region-bounded pc deliberately does NOT
   have this property — it matches the scoped monitor and is strictly below
   the surveillance monitor's monotone C-bar — which is why the certifier
   cannot reuse it. *)
type solution = {
  sol_reach : bool array;
  sol_env : env array;  (** taint environment on entry to each node *)
  sol_pc : Iset.t array;  (** monotone control-context taint on entry *)
}

let solve g =
  let n = Graph.node_count g in
  let reach = Graph.reachable g in
  let preds = Secpol_flowgraph.Graphalgo.predecessors g in
  let initial : env =
    let rec add i env =
      if i >= g.Graph.arity then env
      else add (i + 1) (Var.Map.add (Var.Input i) (Iset.singleton i) env)
    in
    add 0 Var.Map.empty
  in
  let in_env = Array.make n Var.Map.empty in
  in_env.(g.Graph.entry) <- initial;
  let pc = Array.make n Iset.empty in
  let out_of i =
    match g.Graph.nodes.(i) with
    | Graph.Assign (v, e, _) ->
        let written =
          Iset.union
            (vars_taint in_env.(i) (Expr.vars e))
            (Iset.union pc.(i) (taint_of in_env.(i) v))
        in
        (Var.Map.add v written in_env.(i), pc.(i))
    | Graph.Decision (p, _, _) ->
        ( in_env.(i),
          Iset.union pc.(i) (vars_taint in_env.(i) (Expr.pred_vars p)) )
    | Graph.Start _ | Graph.Halt | Graph.Halt_violation _ ->
        (in_env.(i), pc.(i))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if reach.(i) && i <> g.Graph.entry then begin
        let env_join, pc_join =
          List.fold_left
            (fun (ea, pa) p ->
              if reach.(p) then
                let e, pcp = out_of p in
                (merge ea e, Iset.union pa pcp)
              else (ea, pa))
            (Var.Map.empty, Iset.empty)
            preds.(i)
        in
        if not (env_equal env_join in_env.(i)) then begin
          in_env.(i) <- env_join;
          changed := true
        end;
        if not (Iset.equal pc_join pc.(i)) then begin
          pc.(i) <- pc_join;
          changed := true
        end
      end
    done
  done;
  { sol_reach = reach; sol_env = in_env; sol_pc = pc }

(* --- summaries ----------------------------------------------------------- *)

type summary = {
  halt_deps : Iset.t;
  control_deps : Iset.t;
  fault_deps : Iset.t;
  deps : Iset.t;
  violation_halts : bool;
}

let summarize_solution g sol =
  let n = Graph.node_count g in
  let halt_deps = ref Iset.empty
  and control_deps = ref Iset.empty
  and fault_deps = ref Iset.empty
  and violation_halts = ref false in
  for i = 0 to n - 1 do
    if sol.sol_reach.(i) then
      match g.Graph.nodes.(i) with
      | Graph.Halt ->
          halt_deps :=
            Iset.union !halt_deps
              (Iset.union (taint_of sol.sol_env.(i) Var.Out) sol.sol_pc.(i))
      | Graph.Halt_violation _ -> violation_halts := true
      | Graph.Decision (p, _, _) ->
          control_deps :=
            Iset.union !control_deps
              (Iset.union
                 (vars_taint sol.sol_env.(i) (Expr.pred_vars p))
                 sol.sol_pc.(i));
          fault_deps :=
            Iset.union !fault_deps
              (vars_taint sol.sol_env.(i) (fault_pred_vars p))
      | Graph.Assign (_, e, _) ->
          fault_deps :=
            Iset.union !fault_deps (vars_taint sol.sol_env.(i) (fault_vars e))
      | Graph.Start _ -> ()
  done;
  {
    halt_deps = !halt_deps;
    control_deps = !control_deps;
    fault_deps = !fault_deps;
    deps = Iset.union !halt_deps (Iset.union !control_deps !fault_deps);
    violation_halts = !violation_halts;
  }

let summarize g = summarize_solution g (solve g)

(* --- residual-monitor synthesis ------------------------------------------

   Which boxes must the dynamic monitor still watch? Verdicts depend only
   on the DISALLOWED part of every taint set the monitor checks (with the
   single notice, condemnation is "taint within allowed", i.e. "no
   disallowed bits"), so a box may be skipped whenever skipping provably
   preserves the disallowed part of everything that reaches a check:

   - a decision whose static test-plus-context taint has no disallowed bits
     can skip the pc update: the bits it would add are all allowed;
   - an assignment whose static written taint (high-water bound) has no
     disallowed bits can write the empty set instead of computing the join:
     the true taint's disallowed part is provably empty;
   - an assignment to a variable that can never reach a check — neither the
     output, nor any decision's test, nor (transitively) the right-hand
     side of an assignment to such a variable — may be skipped outright,
     whatever its taint.

   [Secpol_taint.Dynamic.run_residual] consumes the plan; the parity
   property (replies bit-identical to the fully monitored run, for every
   mode) is enforced corpus-wide and on random programs by the tests. *)
type residual = {
  watch : bool array;
  watched_boxes : int;
  skipped_boxes : int;
}

(* Variables whose taint can flow into a verdict check, flow-insensitively:
   Out and every tested variable, closed backwards through assignments. *)
let check_relevant g reach =
  let n = Graph.node_count g in
  let relevant = ref (Var.Set.singleton Var.Out) in
  for i = 0 to n - 1 do
    if reach.(i) then
      match g.Graph.nodes.(i) with
      | Graph.Decision (p, _, _) ->
          relevant := Var.Set.union !relevant (Expr.pred_vars p)
      | _ -> ()
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if reach.(i) then
        match g.Graph.nodes.(i) with
        | Graph.Assign (v, e, _) when Var.Set.mem v !relevant ->
            let more = Var.Set.union !relevant (Expr.vars e) in
            if not (Var.Set.equal more !relevant) then begin
              relevant := more;
              changed := true
            end
        | _ -> ()
    done
  done;
  !relevant

let residual_of_solution ~allowed g sol =
  let n = Graph.node_count g in
  let disallowed = Iset.diff (Iset.full g.Graph.arity) allowed in
  let dirty t = not (Iset.is_empty (Iset.inter t disallowed)) in
  let relevant = check_relevant g sol.sol_reach in
  let watch = Array.make n false in
  let watched = ref 0 and skipped = ref 0 in
  for i = 0 to n - 1 do
    if sol.sol_reach.(i) then
      match g.Graph.nodes.(i) with
      | Graph.Assign (v, e, _) ->
          let written =
            Iset.union
              (vars_taint sol.sol_env.(i) (Expr.vars e))
              (Iset.union sol.sol_pc.(i) (taint_of sol.sol_env.(i) v))
          in
          let w = Var.Set.mem v relevant && dirty written in
          watch.(i) <- w;
          incr (if w then watched else skipped)
      | Graph.Decision (p, _, _) ->
          let test =
            Iset.union
              (vars_taint sol.sol_env.(i) (Expr.pred_vars p))
              sol.sol_pc.(i)
          in
          let w = dirty test in
          watch.(i) <- w;
          incr (if w then watched else skipped)
      | Graph.Start _ | Graph.Halt | Graph.Halt_violation _ ->
          (* Halt checks stay live in every plan: they are the verdict. *)
          watch.(i) <- true
  done;
  { watch; watched_boxes = !watched; skipped_boxes = !skipped }

let residual_plan ~allowed g = residual_of_solution ~allowed g (solve g)

(* --- verdicts ------------------------------------------------------------ *)

type witness = {
  w_input : Value.t array;
  w_mode : Dynamic.mode;
  w_notice : string;
  w_steps : int;
  w_finding : Lint.finding option;
}

type verdict = Proved | Refuted of witness | Unknown

type report = {
  program : string;
  allowed : Iset.t;
  summary : summary;
  verdict : verdict;
  residual : residual;
}

let verdict_name = function
  | Proved -> "proved"
  | Refuted _ -> "refuted"
  | Unknown -> "unknown"

let default_max_checks = 2048

(* Bounded concrete search for a condemnation. Surveillance first (the
   paper's M), then high-water, then timed: the modes' condemnations are
   not comparable in general, so each gets its pass. Scoped is omitted —
   its condemnations are a subset of surveillance's. A fuel denial is NOT a
   refutation: it witnesses divergence, which a sound monitor may report on
   every input of a class. *)
let find_witness ~fuel ~allowed ~space ~max_checks g =
  let modes = [ Dynamic.Surveillance; Dynamic.High_water; Dynamic.Timed ] in
  let policy = Policy.allow_set allowed in
  let cfgs =
    List.map (fun mode -> (mode, Dynamic.config ~fuel ~mode policy)) modes
  in
  let finding () =
    let r = Lint.check ~allowed g in
    List.find_opt (fun (f : Lint.finding) -> f.Lint.severity = Lint.Error)
      r.Lint.findings
  in
  let condemns (mode, cfg) input =
    let reply = Dynamic.run cfg g input in
    match reply.Mechanism.response with
    | Mechanism.Denied n when n <> Dynamic.fuel_notice ->
        Some
          {
            w_input = input;
            w_mode = mode;
            w_notice = n;
            w_steps = reply.Mechanism.steps;
            w_finding = finding ();
          }
    | _ -> None
  in
  let rec search seq checked =
    if checked >= max_checks then None
    else
      match seq () with
      | Seq.Nil -> None
      | Seq.Cons (input, rest) -> (
          match List.find_map (fun mc -> condemns mc input) cfgs with
          | Some w -> Some w
          | None -> search rest (checked + 1))
  in
  search (Space.enumerate space) 0

let certify ?(fuel = Interp.default_fuel) ?space
    ?(max_checks = default_max_checks) ~allowed g =
  let sol = solve g in
  let summary = summarize_solution g sol in
  let residual = residual_of_solution ~allowed g sol in
  let disallowed = Iset.diff (Iset.full g.Graph.arity) allowed in
  let verdict =
    if
      Iset.is_empty (Iset.inter summary.deps disallowed)
      && not summary.violation_halts
    then Proved
    else
      let space =
        match space with
        | Some s -> s
        | None -> Space.ints ~lo:0 ~hi:2 ~arity:g.Graph.arity
      in
      match find_witness ~fuel ~allowed ~space ~max_checks g with
      | Some w -> Refuted w
      | None -> Unknown
  in
  { program = g.Graph.name; allowed; summary; verdict; residual }

let allowed_of policy =
  match Policy.allowed_indices policy with
  | Some j -> j
  | None ->
      invalid_arg
        (Printf.sprintf
           "Certifier: certification is defined for allow(...) policies, got %s"
           (Policy.name policy))

let certify_policy ?fuel ?space ?max_checks ~policy g =
  certify ?fuel ?space ?max_checks ~allowed:(allowed_of policy) g

let certify_label ?fuel ?space ?max_checks ~policy g =
  if Lattice.Label.arity policy <> g.Graph.arity then
    invalid_arg
      (Printf.sprintf
         "Certifier.certify_label: %d labels for a %d-input program"
         (Lattice.Label.arity policy) g.Graph.arity);
  certify ?fuel ?space ?max_checks ~allowed:(Lattice.Label.allowed_of policy) g

let output_label ~policy report =
  Lattice.Label.output_label policy report.summary.deps

(* --- rendering ----------------------------------------------------------- *)

let pp_report ppf r =
  let open Format in
  fprintf ppf "@[<v>%s: %s for allow(%a)" r.program (verdict_name r.verdict)
    Iset.pp r.allowed;
  fprintf ppf "@,dependencies: halt %a, control %a, fault %a" Iset.pp
    r.summary.halt_deps Iset.pp r.summary.control_deps Iset.pp
    r.summary.fault_deps;
  (match r.verdict with
  | Proved -> ()
  | Refuted w ->
      fprintf ppf "@,witness: %s condemns [%s] with %s after %d steps"
        (Dynamic.mode_name w.w_mode)
        (String.concat "; "
           (Array.to_list (Array.map Value.to_string w.w_input)))
        w.w_notice w.w_steps;
      Option.iter (fun f -> fprintf ppf "@,%a" Lint.pp_finding f) w.w_finding
  | Unknown ->
      fprintf ppf "@,no witness found: monitor at run time");
  fprintf ppf "@,residual monitor: watch %d of %d boxes" r.residual.watched_boxes
    (r.residual.watched_boxes + r.residual.skipped_boxes);
  fprintf ppf "@]"

module Json = Lint.Json

let json_of_iset s =
  Json.List (List.map (fun i -> Json.Int i) (Iset.to_list s))

let json_of_value = function
  | Value.Int n -> Json.Int n
  | v -> Json.String (Value.to_string v)

let to_json r =
  let witness =
    match r.verdict with
    | Proved | Unknown -> Json.Null
    | Refuted w ->
        Json.Obj
          [
            ( "input",
              Json.List (Array.to_list (Array.map json_of_value w.w_input)) );
            ("mode", Json.String (Dynamic.mode_name w.w_mode));
            ("notice", Json.String w.w_notice);
            ("steps", Json.Int w.w_steps);
            ( "finding",
              match w.w_finding with
              | None -> Json.Null
              | Some f -> Lint.json_of_finding f );
          ]
  in
  let watched_nodes =
    List.filteri (fun i _ -> r.residual.watch.(i))
      (Array.to_list (Array.init (Array.length r.residual.watch) Fun.id))
  in
  Json.Obj
    [
      ("program", Json.String r.program);
      ("allowed", json_of_iset r.allowed);
      ("verdict", Json.String (verdict_name r.verdict));
      ( "dependencies",
        Json.Obj
          [
            ("halt", json_of_iset r.summary.halt_deps);
            ("control", json_of_iset r.summary.control_deps);
            ("fault", json_of_iset r.summary.fault_deps);
            ("all", json_of_iset r.summary.deps);
          ] );
      ("witness", witness);
      ( "residual",
        Json.Obj
          [
            ("watched", Json.Int r.residual.watched_boxes);
            ("skipped", Json.Int r.residual.skipped_boxes);
            ( "watch_nodes",
              Json.List (List.map (fun i -> Json.Int i) watched_nodes) );
          ] );
    ]

let to_json_string r = Json.render (to_json r)
