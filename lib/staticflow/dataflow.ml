module Iset = Secpol_core.Iset
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Graph = Secpol_flowgraph.Graph
module Span = Secpol_flowgraph.Span
module Interp = Secpol_flowgraph.Interp
module Graphalgo = Secpol_flowgraph.Graphalgo

type env = Iset.t Var.Map.t

let taint_of env v =
  match Var.Map.find_opt v env with Some t -> t | None -> Iset.empty

let vars_taint env vs =
  Var.Set.fold (fun v acc -> Iset.union (taint_of env v) acc) vs Iset.empty

let merge (a : env) (b : env) : env =
  Var.Map.union (fun _ ta tb -> Some (Iset.union ta tb)) a b

let env_equal (a : env) (b : env) = Var.Map.equal Iset.equal a b

(* Nodes reachable from [d]'s successors without passing through [stop]
   (-1: no stop). This is the single-entry region the decision controls. *)
let region g d stop =
  let n = Graph.node_count g in
  let in_region = Array.make n false in
  let rec visit i =
    if i <> stop && not in_region.(i) then begin
      in_region.(i) <- true;
      List.iter visit (Graph.successors g i)
    end
  in
  List.iter visit (Graph.successors g d);
  in_region

type counterexample = {
  cx_input : int;
  cx_node : int option;
  cx_span : Span.t option;
}

type report = {
  certified : bool;
  halt_taints : (int * Iset.t) list;
  pc_taint : Iset.t array;
  counterexamples : counterexample list;
}

let analyze ~allowed g =
  let n = Graph.node_count g in
  let reach = Graph.reachable g in
  let ipd = Graphalgo.immediate_postdominator g in
  let preds = Graphalgo.predecessors g in
  let decisions =
    List.filter
      (fun i -> reach.(i) && match g.Graph.nodes.(i) with Graph.Decision _ -> true | _ -> false)
      (List.init n Fun.id)
  in
  let regions = List.map (fun d -> (d, region g d ipd.(d))) decisions in
  let initial : env =
    let rec add i env =
      if i >= g.Graph.arity then env
      else add (i + 1) (Var.Map.add (Var.Input i) (Iset.singleton i) env)
    in
    add 0 Var.Map.empty
  in
  (* in_env.(i): taint environment on entry to node i. *)
  let in_env = Array.make n Var.Map.empty in
  in_env.(g.Graph.entry) <- initial;
  let pc = Array.make n Iset.empty in
  let test_taint d =
    match g.Graph.nodes.(d) with
    | Graph.Decision (p, _, _) -> vars_taint in_env.(d) (Expr.pred_vars p)
    | _ -> assert false
  in
  let out_env i =
    match g.Graph.nodes.(i) with
    | Graph.Assign (v, e, _) ->
        Var.Map.add v (Iset.union (vars_taint in_env.(i) (Expr.vars e)) pc.(i)) in_env.(i)
    | Graph.Start _ | Graph.Decision _ | Graph.Halt | Graph.Halt_violation _ ->
        in_env.(i)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Refresh control contexts from current test taints. *)
    List.iter
      (fun (d, in_region) ->
        let t = test_taint d in
        for i = 0 to n - 1 do
          if in_region.(i) then begin
            let t' = Iset.union pc.(i) t in
            if not (Iset.equal t' pc.(i)) then begin
              pc.(i) <- t';
              changed := true
            end
          end
        done)
      regions;
    (* One round of forward propagation. *)
    for i = 0 to n - 1 do
      if reach.(i) && i <> g.Graph.entry then begin
        let joined =
          List.fold_left
            (fun acc p -> if reach.(p) then merge acc (out_env p) else acc)
            Var.Map.empty preds.(i)
        in
        if not (env_equal joined in_env.(i)) then begin
          in_env.(i) <- joined;
          changed := true
        end
      end
    done
  done;
  let halt_taints =
    List.filter_map
      (fun h ->
        if not reach.(h) then None
        else
          match g.Graph.nodes.(h) with
          | Graph.Halt ->
              Some (h, Iset.union (taint_of in_env.(h) Var.Out) pc.(h))
          | _ -> None)
      (Graph.halt_nodes g)
  in
  let certified =
    List.for_all (fun (_, t) -> Iset.subset t allowed) halt_taints
  in
  (* One located counterexample per offending input: prefer an assignment
     into the output whose taint carries it (the explicit flow a reader can
     point at), then any tainted assignment, then the decision whose test
     reads it — so even pure control-channel violations get a source span
     when the graph carries one. *)
  let counterexamples =
    if certified then []
    else begin
      let offending =
        List.fold_left
          (fun acc (_, t) -> Iset.union acc (Iset.diff t allowed))
          Iset.empty halt_taints
      in
      List.rev
        (Iset.fold
           (fun j acc ->
             let out_assign = ref None
             and any_assign = ref None
             and any_decision = ref None in
             let remember r i = if !r = None then r := Some i in
             for i = 0 to n - 1 do
               if reach.(i) then
                 match g.Graph.nodes.(i) with
                 | Graph.Assign (v, e, _) ->
                     let t =
                       Iset.union (vars_taint in_env.(i) (Expr.vars e)) pc.(i)
                     in
                     if Iset.mem j t then
                       remember
                         (if v = Var.Out then out_assign else any_assign)
                         i
                 | Graph.Decision (p, _, _) ->
                     if
                       Iset.mem j
                         (vars_taint in_env.(i) (Expr.pred_vars p))
                     then remember any_decision i
                 | Graph.Start _ | Graph.Halt | Graph.Halt_violation _ -> ()
             done;
             let cx_node =
               match (!out_assign, !any_assign, !any_decision) with
               | (Some _ as n), _, _ | None, (Some _ as n), _ -> n
               | None, None, n -> n
             in
             {
               cx_input = j;
               cx_node;
               cx_span = Option.bind cx_node (Graph.span g);
             }
             :: acc)
           offending [])
    end
  in
  { certified; halt_taints; pc_taint = pc; counterexamples }

let allowed_of policy =
  match Policy.allowed_indices policy with
  | Some j -> j
  | None ->
      invalid_arg
        (Printf.sprintf
           "Dataflow: certification is defined for allow(...) policies, got %s"
           (Policy.name policy))

let certified ~policy g = (analyze ~allowed:(allowed_of policy) g).certified

let mechanism ?fuel ~policy g =
  let name = Printf.sprintf "static(%s)" g.Graph.name in
  if certified ~policy g then
    Mechanism.rename name (Mechanism.of_program (Interp.graph_program ?fuel g))
  else Mechanism.rename name (Mechanism.pull_the_plug g.Graph.arity)
