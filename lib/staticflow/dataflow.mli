(** Static information-flow analysis directly over flowcharts.

    The structured certifier ({!Certify}) needs syntax; real programs in the
    paper's model are arbitrary flowcharts. This module runs a maximal
    fixed-point dataflow analysis on the graph itself:

    - a forward taint environment per node (join over predecessors), and
    - a control-context taint per node: node [n] sits in the {e region} of
      decision [d] — between [d] and [d]'s immediate postdominator — iff
      [n] is reachable from a successor of [d] without passing through the
      postdominator. The region is where [d]'s test can influence {e
      whether} things happen; every assignment inside it picks up the
      test's taint.

    Because the analysis ranges over all paths (the branch {e not} taken
    still contributes its assignments' taints), its verdict is sound where
    the dynamic scoped mechanism is not — the classic static/dynamic
    flow-sensitivity asymmetry, measured in experiment E9. *)

(** A located reason certification failed: disallowed input [cx_input]
    reaches a halt check, exhibited at [cx_node] — an assignment whose
    taint carries the input (output-targeted when one exists) or, for pure
    control-channel flows, the decision that tests it — with the node's
    source span when {!Secpol_flowgraph.Compile} threaded one. *)
type counterexample = {
  cx_input : int;
  cx_node : int option;
  cx_span : Secpol_flowgraph.Span.t option;
}

type report = {
  certified : bool;
      (** every reachable halt box outputs taint within the allowed set *)
  halt_taints : (int * Secpol_core.Iset.t) list;
      (** per reachable halt node: the output-plus-context taint checked *)
  pc_taint : Secpol_core.Iset.t array;  (** control context per node *)
  counterexamples : counterexample list;
      (** one per offending input, ascending; empty iff [certified] *)
}

val analyze : allowed:Secpol_core.Iset.t -> Secpol_flowgraph.Graph.t -> report

val region : Secpol_flowgraph.Graph.t -> int -> int -> bool array
(** [region g d stop].(n) iff [n] is reachable from a successor of decision
    [d] without passing through [stop] ([-1]: no stop). With [stop] the
    immediate postdominator of [d], this is the single-entry region whose
    execution [d]'s test controls. Shared with {!Lint}, which rebuilds the
    same control contexts while carrying witnesses. *)

val certified :
  policy:Secpol_core.Policy.t -> Secpol_flowgraph.Graph.t -> bool
(** @raise Invalid_argument on a non-[allow] policy. *)

val mechanism :
  ?fuel:int ->
  policy:Secpol_core.Policy.t ->
  Secpol_flowgraph.Graph.t ->
  Secpol_core.Mechanism.t
(** Certify-then-run: the flowchart-level compile-time mechanism. *)
