module Iset = Secpol_core.Iset
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Program = Secpol_core.Program
module Graph = Secpol_flowgraph.Graph
module Interp = Secpol_flowgraph.Interp

let notice = "\xce\x9b"

let guard ~allowed g =
  let report = Dataflow.analyze ~allowed g in
  let dirty =
    List.filter_map
      (fun (h, taint) -> if Iset.subset taint allowed then None else Some h)
      report.Dataflow.halt_taints
  in
  let nodes =
    Array.mapi
      (fun i node ->
        if List.mem i dirty then Graph.Halt_violation notice else node)
      g.Graph.nodes
  in
  Graph.make ~name:(g.Graph.name ^ "+guard") ~arity:g.Graph.arity
    ~entry:g.Graph.entry ~spans:g.Graph.spans nodes

let mechanism ?fuel ~policy g =
  let allowed =
    match Policy.allowed_indices policy with
    | Some j -> j
    | None ->
        invalid_arg
          "Halt_guard.mechanism: defined for allow(...) policies only"
  in
  Interp.graph_mechanism ?fuel (guard ~allowed g)
