(** The static policy certifier: whole-program verdicts before any input
    arrives.

    Section 5 argues that compile-time enforcement "would result in
    efficient security enforcement"; {!Certify} and {!Dataflow} realize it
    as all-or-nothing certification against one analysis. This module is
    the production form of that idea: a whole-program abstract
    interpretation whose result is a {e verdict} —

    - [Proved]: {e no} dynamic mechanism is needed. For every input and
      every monitor mode ({!Secpol_taint.Dynamic.mode}, with the single
      notice Λ), the monitored run grants exactly what the plain
      interpreter computes (or reports the same input-independent fuel
      denial / fault); the program as a mechanism is sound for the policy.
    - [Refuted w]: a concrete input on which a dynamic monitor condemns the
      run — found by bounded enumeration and replayable ([w] names the
      mode, the input and the notice, and carries a span-bearing
      {!Lint.finding} for the offending flow).
    - [Unknown]: the analysis cannot prove the program clean and the
      bounded search found no condemnation — monitor at run time, using
      the {!residual} plan to watch only the boxes that matter.

    {b The abstraction.} One maximal fixed point over {e high-water}
    transfer functions (an assignment's taint joins its old value) with a
    {e monotone} program-counter taint (test taints join into every
    successor's context and are never restored). On every run the taint
    state of each dynamic mode is pointwise below this abstraction — scoped
    below surveillance below high-water — so a single analysis soundly
    over-approximates all four monitors. Three dependency channels feed the
    verdict: [halt_deps] (what the output-plus-context check at each halt
    box can see — explicit and implicit flows), [control_deps] (what any
    test can see: the timed monitor's decision-box check, and the
    termination channel), and [fault_deps] (what can decide whether
    evaluation faults — a division by zero distinguishes inputs the policy
    calls equivalent). [Proved] requires all three clear of disallowed
    indices. {!Dataflow}'s region-bounded pc matches only the scoped
    monitor and must not be substituted.

    {b Soundness of cache pre-seeding.} A [Proved] program's monitored
    reply is a function of the policy image [I(a)] alone (it equals the
    plain run's reply, whose every ingredient — value, step count, fault,
    divergence — depends only on allowed inputs), so one plain run per
    I-class is a sound {!Secpol_engine.Cache} entry under the same
    [(digest, tag, I-projection)] key that [M = M' ∘ I] justifies.
    [Secpol.Static.preseed] implements this.

    Verdicts assume the monitors' single-notice discipline
    ([chatty_notices = false], the default). *)

module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Graph = Secpol_flowgraph.Graph
module Dynamic = Secpol_taint.Dynamic

type summary = {
  halt_deps : Iset.t;
      (** joined over reachable halt boxes: output taint plus context *)
  control_deps : Iset.t;
      (** joined over reachable decisions: test taint plus context *)
  fault_deps : Iset.t;
      (** inputs that can decide whether expression evaluation faults *)
  deps : Iset.t;  (** union of the three channels *)
  violation_halts : bool;
      (** a reachable [Halt_violation] box (instrumented graphs); such a
          graph is never [Proved] — it denies by construction *)
}

val summarize : Graph.t -> summary
(** The dependency summary alone, policy-independent. *)

(** The residual-monitor plan for an undecided program: [watch.(n)] iff the
    dynamic monitor must still track taint at box [n]. Unwatched
    assignments provably write taint with no disallowed part (or feed no
    check at all); unwatched decisions provably add no disallowed bits to
    the control context. {!Secpol_taint.Dynamic.run_residual} consumes the
    plan and returns replies bit-identical to the fully monitored run —
    with strictly less surveillance work wherever [skipped_boxes > 0]. *)
type residual = {
  watch : bool array;  (** indexed by node; consulted for assign/decision *)
  watched_boxes : int;  (** reachable assign/decision boxes kept *)
  skipped_boxes : int;  (** reachable assign/decision boxes released *)
}

val residual_plan : allowed:Iset.t -> Graph.t -> residual

type witness = {
  w_input : Value.t array;  (** the condemned input *)
  w_mode : Dynamic.mode;  (** which monitor condemns it *)
  w_notice : string;  (** the violation notice issued *)
  w_steps : int;
  w_finding : Lint.finding option;
      (** a span-carrying provenance chain for the flow, when the linter
          locates one *)
}

type verdict = Proved | Refuted of witness | Unknown

type report = {
  program : string;
  allowed : Iset.t;
  summary : summary;
  verdict : verdict;
  residual : residual;
      (** always present; for [Proved] every box is skippable *)
}

val certify :
  ?fuel:int ->
  ?space:Secpol_core.Space.t ->
  ?max_checks:int ->
  allowed:Iset.t ->
  Graph.t ->
  report
(** [space] bounds the witness search (default [{0..2}^arity]);
    [max_checks] caps enumerated inputs (default 2048); [fuel] is the
    monitor budget used for witness replay (default
    {!Secpol_flowgraph.Interp.default_fuel}). *)

val certify_policy :
  ?fuel:int ->
  ?space:Secpol_core.Space.t ->
  ?max_checks:int ->
  policy:Secpol_core.Policy.t ->
  Graph.t ->
  report
(** @raise Invalid_argument on a non-[allow] policy. *)

val certify_label :
  ?fuel:int ->
  ?space:Secpol_core.Space.t ->
  ?max_checks:int ->
  policy:Secpol_core.Lattice.Label.policy ->
  Graph.t ->
  report
(** Certification against a label-lattice policy, through the reduction
    [allow(J)] with [J] = the inputs whose label flows to the clearance
    ({!Secpol_core.Lattice.Label.allowed_of}).
    @raise Invalid_argument if the label assignment's arity differs from
    the program's. *)

val output_label :
  policy:Secpol_core.Lattice.Label.policy -> report -> string
(** The join of the labels of every input in [report.summary.deps] — the
    classification the certifier can prove for the output. [Proved] is
    exactly "output label flows to the clearance" plus clean control and
    fault channels. *)

val verdict_name : verdict -> string
(** ["proved"], ["refuted"], ["unknown"]. *)

val pp_report : Format.formatter -> report -> unit

module Json = Lint.Json

val to_json : report -> Json.value
val to_json_string : report -> string
