type t =
  | INT of int
  | INPUT of int
  | REG of int
  | OUT
  | IDENT of string
  | PROGRAM
  | SKIP
  | IF
  | THEN
  | ELSE
  | END
  | WHILE
  | DO
  | DONE
  | TRUE
  | FALSE
  | AND
  | OR
  | NOT
  | ASSIGN
  | SEMI
  | COMMA
  | COLON
  | LPAREN
  | RPAREN
  | QUESTION
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | BAR
  | AMP
  | TILDE
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

type located = {
  token : t;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
}

let describe = function
  | INT n -> string_of_int n
  | INPUT i -> Printf.sprintf "x%d" i
  | REG i -> Printf.sprintf "r%d" i
  | OUT -> "y"
  | IDENT s -> s
  | PROGRAM -> "program"
  | SKIP -> "skip"
  | IF -> "if"
  | THEN -> "then"
  | ELSE -> "else"
  | END -> "end"
  | WHILE -> "while"
  | DO -> "do"
  | DONE -> "done"
  | TRUE -> "true"
  | FALSE -> "false"
  | AND -> "and"
  | OR -> "or"
  | NOT -> "not"
  | ASSIGN -> ":="
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | LPAREN -> "("
  | RPAREN -> ")"
  | QUESTION -> "?"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | BAR -> "|"
  | AMP -> "&"
  | TILDE -> "~"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
