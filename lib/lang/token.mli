(** Tokens of the concrete While-language syntax. *)

type t =
  | INT of int
  | INPUT of int  (** [x3] *)
  | REG of int  (** [r2] *)
  | OUT  (** [y] *)
  | IDENT of string  (** program names *)
  | PROGRAM
  | SKIP
  | IF
  | THEN
  | ELSE
  | END
  | WHILE
  | DO
  | DONE
  | TRUE
  | FALSE
  | AND
  | OR
  | NOT
  | ASSIGN  (** [:=] *)
  | SEMI
  | COMMA
  | COLON
  | LPAREN
  | RPAREN
  | QUESTION
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | BAR
  | AMP
  | TILDE
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

type located = {
  token : t;
  line : int;
  col : int;  (** 1-based start position *)
  end_line : int;
  end_col : int;  (** column just past the last character (exclusive) *)
}

val describe : t -> string
