exception Error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 0
  | _ -> ());
  st.col <- st.col + 1;
  st.pos <- st.pos + 1

let error st message = raise (Error { line = st.line; col = st.col; message })

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  int_of_string (String.sub st.src start (st.pos - start))

let lex_word st =
  let start = st.pos in
  while
    match peek st with Some c -> is_alpha c || is_digit c | None -> false
  do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let keyword_or_var word =
  let open Token in
  match word with
  | "program" -> PROGRAM
  | "skip" -> SKIP
  | "if" -> IF
  | "then" -> THEN
  | "else" -> ELSE
  | "end" -> END
  | "while" -> WHILE
  | "do" -> DO
  | "done" -> DONE
  | "true" -> TRUE
  | "false" -> FALSE
  | "and" -> AND
  | "or" -> OR
  | "not" -> NOT
  | "y" -> OUT
  | w ->
      let var_index prefix =
        if String.length w >= 2 && w.[0] = prefix then begin
          let suffix = String.sub w 1 (String.length w - 1) in
          if String.for_all is_digit suffix then Some (int_of_string suffix)
          else None
        end
        else None
      in
      (match (var_index 'x', var_index 'r') with
      | Some i, _ -> INPUT i
      | _, Some i -> REG i
      | None, None -> IDENT w)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let acc = ref [] in
  (* [emit]'s token argument is evaluated first, so the lexer has already
     advanced past the token: [st.line]/[st.col] here are its end position. *)
  let emit token ~line ~col =
    acc :=
      { Token.token; line; col; end_line = st.line; end_col = st.col } :: !acc
  in
  let rec loop () =
    match peek st with
    | None -> emit Token.EOF ~line:st.line ~col:st.col
    | Some c -> (
        let line = st.line and col = st.col in
        let simple t =
          advance st;
          emit t ~line ~col
        in
        (match c with
        | ' ' | '\t' | '\r' | '\n' -> advance st
        | '#' ->
            while (match peek st with Some c -> c <> '\n' | None -> false) do
              advance st
            done
        | '0' .. '9' -> emit (Token.INT (lex_number st)) ~line ~col
        | '(' -> simple Token.LPAREN
        | ')' -> simple Token.RPAREN
        | '?' -> simple Token.QUESTION
        | '+' -> simple Token.PLUS
        | '-' -> simple Token.MINUS
        | '*' -> simple Token.STAR
        | '/' -> simple Token.SLASH
        | '%' -> simple Token.PERCENT
        | '|' -> simple Token.BAR
        | '&' -> simple Token.AMP
        | '~' -> simple Token.TILDE
        | ';' -> simple Token.SEMI
        | ',' -> simple Token.COMMA
        | '=' -> simple Token.EQ
        | ':' -> (
            advance st;
            match peek st with
            | Some '=' ->
                advance st;
                emit Token.ASSIGN ~line ~col
            | _ -> emit Token.COLON ~line ~col)
        | '<' -> (
            advance st;
            match peek st with
            | Some '=' ->
                advance st;
                emit Token.LE ~line ~col
            | Some '>' ->
                advance st;
                emit Token.NE ~line ~col
            | _ -> emit Token.LT ~line ~col)
        | '>' -> (
            advance st;
            match peek st with
            | Some '=' ->
                advance st;
                emit Token.GE ~line ~col
            | _ -> emit Token.GT ~line ~col)
        | c when is_alpha c -> emit (keyword_or_var (lex_word st)) ~line ~col
        | c -> error st (Printf.sprintf "unexpected character %C" c));
        loop ())
  in
  loop ();
  List.rev !acc
