module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Ast = Secpol_flowgraph.Ast
module Span = Secpol_flowgraph.Span

exception Error of { line : int; col : int; message : string }

type state = { tokens : Token.located array; mutable idx : int }

let current st = st.tokens.(st.idx)
let peek st = (current st).Token.token

let error st message =
  let { Token.line; col; _ } = current st in
  raise (Error { line; col; message })

let advance st = if st.idx < Array.length st.tokens - 1 then st.idx <- st.idx + 1

let expect st token =
  if peek st = token then advance st
  else
    error st
      (Printf.sprintf "expected %s, found %s" (Token.describe token)
         (Token.describe (peek st)))

(* Backtracking for the one ambiguous spot: '(' opening either a
   parenthesized expression or a select / parenthesized predicate. *)
let attempt st f =
  let saved = st.idx in
  match f st with
  | v -> Some v
  | exception Error _ ->
      st.idx <- saved;
      None

let parse_lvalue st =
  match peek st with
  | Token.INPUT i ->
      advance st;
      Var.Input i
  | Token.REG i ->
      advance st;
      Var.Reg i
  | Token.OUT ->
      advance st;
      Var.Out
  | t -> error st ("expected a variable, found " ^ Token.describe t)

let rec parse_expr st = parse_bits st

(* | and & bind loosest. *)
and parse_bits st =
  let lhs = ref (parse_sum st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.BAR ->
        advance st;
        lhs := Expr.Bor (!lhs, parse_sum st)
    | Token.AMP ->
        advance st;
        lhs := Expr.Band (!lhs, parse_sum st)
    | _ -> continue := false
  done;
  !lhs

and parse_sum st =
  let lhs = ref (parse_term st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.PLUS ->
        advance st;
        lhs := Expr.Add (!lhs, parse_term st)
    | Token.MINUS ->
        advance st;
        lhs := Expr.Sub (!lhs, parse_term st)
    | _ -> continue := false
  done;
  !lhs

and parse_term st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.STAR ->
        advance st;
        lhs := Expr.Mul (!lhs, parse_unary st)
    | Token.SLASH ->
        advance st;
        lhs := Expr.Div (!lhs, parse_unary st)
    | Token.PERCENT ->
        advance st;
        lhs := Expr.Mod (!lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Token.MINUS ->
      advance st;
      Expr.Neg (parse_unary st)
  | Token.TILDE ->
      advance st;
      Expr.Bnot (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Token.INT n ->
      advance st;
      Expr.Const n
  | Token.INPUT i ->
      advance st;
      Expr.Var (Var.Input i)
  | Token.REG i ->
      advance st;
      Expr.Var (Var.Reg i)
  | Token.OUT ->
      advance st;
      Expr.Var Var.Out
  | Token.LPAREN -> (
      advance st;
      (* Either a select "(p ? a : b)" or a parenthesized expression. *)
      let select st =
        let p = parse_pred st in
        expect st Token.QUESTION;
        let a = parse_expr st in
        expect st Token.COLON;
        let b = parse_expr st in
        expect st Token.RPAREN;
        Expr.Cond (p, a, b)
      in
      match attempt st select with
      | Some e -> e
      | None ->
          let e = parse_expr st in
          expect st Token.RPAREN;
          e)
  | t -> error st ("expected an expression, found " ^ Token.describe t)

and parse_pred st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = Token.OR do
    advance st;
    lhs := Expr.Or (!lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while peek st = Token.AND do
    advance st;
    lhs := Expr.And (!lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  match peek st with
  | Token.NOT ->
      advance st;
      Expr.Not (parse_not st)
  | Token.TRUE ->
      advance st;
      Expr.True
  | Token.FALSE ->
      advance st;
      Expr.False
  | Token.LPAREN -> (
      (* Either "(pred)" or a comparison whose left side is parenthesized. *)
      let paren st =
        advance st;
        let p = parse_pred st in
        expect st Token.RPAREN;
        p
      in
      match attempt st paren with Some p -> p | None -> parse_cmp st)
  | _ -> parse_cmp st

and parse_cmp st =
  let lhs = parse_expr st in
  let op =
    match peek st with
    | Token.EQ -> Expr.Eq
    | Token.NE -> Expr.Ne
    | Token.LT -> Expr.Lt
    | Token.LE -> Expr.Le
    | Token.GT -> Expr.Gt
    | Token.GE -> Expr.Ge
    | t -> error st ("expected a comparison operator, found " ^ Token.describe t)
  in
  advance st;
  let rhs = parse_expr st in
  Expr.Cmp (op, lhs, rhs)

let rec parse_stmt st =
  let first = parse_atom st in
  if peek st = Token.SEMI then begin
    advance st;
    Ast.seq [ first; parse_stmt st ]
  end
  else first

(* Each atom is wrapped in [Ast.At] spanning its first through last token,
   so compiled flowchart nodes can point diagnostics at the source. *)
and parse_atom st =
  let start = current st in
  let s = parse_atom_inner st in
  let last = st.tokens.(if st.idx > 0 then st.idx - 1 else 0) in
  Ast.at
    (Span.make ~start_line:start.Token.line ~start_col:start.Token.col
       ~end_line:last.Token.end_line ~end_col:last.Token.end_col)
    s

and parse_atom_inner st =
  match peek st with
  | Token.SKIP ->
      advance st;
      Ast.Skip
  | Token.IF ->
      advance st;
      let p = parse_pred st in
      expect st Token.THEN;
      let a = parse_stmt st in
      let b =
        if peek st = Token.ELSE then begin
          advance st;
          parse_stmt st
        end
        else Ast.Skip
      in
      expect st Token.END;
      Ast.If (p, a, b)
  | Token.WHILE ->
      advance st;
      let p = parse_pred st in
      expect st Token.DO;
      let body = parse_stmt st in
      expect st Token.DONE;
      Ast.While (p, body)
  | Token.INPUT _ | Token.REG _ | Token.OUT ->
      let v = parse_lvalue st in
      expect st Token.ASSIGN;
      Ast.Assign (v, parse_expr st)
  | t -> error st ("expected a statement, found " ^ Token.describe t)

let parse_params st =
  expect st Token.LPAREN;
  let rec go expected =
    match peek st with
    | Token.RPAREN ->
        advance st;
        expected
    | Token.INPUT i when i = expected ->
        advance st;
        (match peek st with
        | Token.COMMA ->
            advance st;
            go (expected + 1)
        | Token.RPAREN ->
            advance st;
            expected + 1
        | t -> error st ("expected , or ), found " ^ Token.describe t))
    | Token.INPUT i ->
        error st (Printf.sprintf "parameters must be declared in order; expected x%d, found x%d" expected i)
    | t -> error st ("expected a parameter like x0, found " ^ Token.describe t)
  in
  go 0

(* Program names may be hyphenated ("constant-branch") and may reuse
   keywords as name parts ("loop-then-secretfree"): in name position any
   word-like token joins in. *)
let name_part = function
  | Token.IDENT s -> Some s
  | Token.INT n -> Some (string_of_int n)
  | ( Token.PROGRAM | Token.SKIP | Token.IF | Token.THEN | Token.ELSE
    | Token.END | Token.WHILE | Token.DO | Token.DONE | Token.TRUE
    | Token.FALSE | Token.AND | Token.OR | Token.NOT | Token.OUT
    | Token.INPUT _ | Token.REG _ ) as t ->
      Some (Token.describe t)
  | _ -> None

let parse_name st =
  match name_part (peek st) with
  | None -> error st ("expected a program name, found " ^ Token.describe (peek st))
  | Some first ->
      advance st;
      let parts = ref [ first ] in
      let rec go () =
        if peek st = Token.MINUS then begin
          let after =
            if st.idx + 1 < Array.length st.tokens then
              name_part st.tokens.(st.idx + 1).Token.token
            else None
          in
          match after with
          | Some part ->
              advance st;
              advance st;
              parts := part :: !parts;
              go ()
          | None -> ()
        end
      in
      go ();
      String.concat "-" (List.rev !parts)

let program tokens =
  let st = { tokens = Array.of_list tokens; idx = 0 } in
  expect st Token.PROGRAM;
  let name = parse_name st in
  let arity = parse_params st in
  if peek st = Token.COLON then advance st;
  let body = parse_stmt st in
  expect st Token.EOF;
  match Ast.validate { Ast.name; arity; body } with
  | Ok () -> { Ast.name; arity; body }
  | Error m -> error st m

let statement tokens =
  let st = { tokens = Array.of_list tokens; idx = 0 } in
  let body = parse_stmt st in
  expect st Token.EOF;
  body
