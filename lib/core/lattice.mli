(** The lattice of protection mechanisms.

    After Theorem 1 the paper remarks: "if we assume only a single
    violation notice, it can easily be shown that the sound protection
    mechanisms form a lattice". This module supplies the structure the
    remark refers to, over a finite space where it can be verified.

    The order is completeness ([Completeness.compare]); mechanisms are
    identified with their {e grant sets} (the inputs on which they return
    [Q]'s output — with one violation notice, the grant set is the whole
    extensional content). Join is {!Mechanism.join}; {!meet} grants where
    both components grant. Bottom is pulling the plug; the top of the
    {e sound} sublattice is the maximal mechanism of Theorem 2.

    Soundness closure: the join and meet of sound mechanisms are sound —
    the join by Theorem 1, the meet because its grant decision is a
    conjunction of two functions of [I(a)]. The lattice-law tests in the
    suite check all of this on concrete families. *)

val meet : Mechanism.t -> Mechanism.t -> Mechanism.t
(** [meet m1 m2] grants (with [m1]'s reply) exactly where both grant;
    elsewhere it answers the single violation notice. *)

(** Finite security-label lattices and the policies they induce.

    The model's policies are information filters; the classification
    lattices of the surrounding literature (Denning's lattice model; the
    paper cites the same military levels in Example 1) fit the model by
    reduction: fix a finite lattice of levels, give every input a label and
    the observer a clearance, and the induced policy is [allow(J)] for [J]
    = the inputs whose label flows to the clearance. The static certifier
    ({!Secpol_staticflow.Certifier}) checks label policies through exactly
    this reduction, and reports the {e output label} — the join of the
    labels of every input the output may depend on. *)
module Label : sig
  type order
  (** A finite lattice of level names: a validated partial order in which
      every pair of levels has a least upper bound and a greatest lower
      bound. *)

  val order :
    name:string -> levels:string list -> covers:(string * string) list -> order
  (** [order ~name ~levels ~covers] builds the reflexive-transitive closure
      of the [(lower, higher)] cover pairs.
      @raise Invalid_argument on duplicate or unknown level names, an order
      cycle, or a pair of levels without a unique join or meet (i.e. a
      partial order that is not a lattice). *)

  val name : order -> string

  val levels : order -> string list
  (** In declaration order. *)

  val leq : order -> string -> string -> bool
  (** [leq o a b] iff information at level [a] may flow to level [b].
      @raise Invalid_argument on an unknown level (also the other
      accessors below). *)

  val join : order -> string -> string -> string
  val meet : order -> string -> string -> string

  val bottom : order -> string
  (** The least level — the label of public data and of constants. *)

  val top : order -> string

  val two_point : order
  (** ["low"] ⊑ ["high"] — the lattice that makes [allow(J)] a label
      policy. *)

  val chain : name:string -> string list -> order
  (** A total order, lowest first (e.g. unclassified ⊑ secret ⊑ top-secret). *)

  val diamond : order
  (** ["bot"] ⊑ ["left"], ["right"] ⊑ ["top"] — the smallest lattice with
      incomparable levels; exercises joins that are neither argument. *)

  type policy
  (** A label assignment: one level per input index, plus the observer's
      clearance. *)

  val policy : order:order -> labels:string list -> clearance:string -> policy
  (** [labels] in input-index order.
      @raise Invalid_argument on an unknown level name. *)

  val policy_order : policy -> order
  val clearance : policy -> string
  val arity : policy -> int

  val label : policy -> int -> string
  (** @raise Invalid_argument out of range. *)

  val labels : policy -> string list

  val allowed_of : policy -> Iset.t
  (** The inputs whose label flows to the clearance. *)

  val to_policy : policy -> Policy.t
  (** The induced [allow(J)] policy — the reduction under which every
      enforcement theorem about [allow(J)] applies to label policies. *)

  val output_label : policy -> Iset.t -> string
  (** [output_label p deps] is the join of the labels of the inputs in
      [deps] ([bottom] for no dependencies) — the classification of an
      output that depends on exactly those inputs. *)

  val of_allow : arity:int -> Iset.t -> policy
  (** [allow(J)] as a two-point label policy: allowed inputs ["low"],
      the rest ["high"], clearance ["low"]. *)

  val pp_policy : Format.formatter -> policy -> unit
end

val equivalent : Mechanism.t -> Mechanism.t -> q:Program.t -> Space.t -> bool
(** Same grant set over the space (the lattice's underlying equality). *)

val grant_set : Mechanism.t -> q:Program.t -> Space.t -> Value.t array list
(** The inputs on which the mechanism returns [Q]'s output, in enumeration
    order. *)

val of_grant_predicate :
  name:string -> q:Program.t -> (Value.t array -> bool) -> Mechanism.t
(** The mechanism that grants [Q]'s output exactly where the predicate
    holds — the paper's identification of mechanisms with subsets, as a
    constructor. Sound iff the predicate and [Q]'s restriction to it factor
    through the policy; handy for building lattice test families. *)
