(** The maximal sound protection mechanism, constructed by brute force.

    Theorem 2: for any [Q] and [I] a maximal sound mechanism exists — the
    union of all sound mechanisms. Theorem 4: no effective procedure builds
    it from an arbitrary ([Q], [I]); indeed it need not even be recursive
    (Ruzzo). Neither theorem forbids computing it over a {e finite} input
    space, where "is [Q] constant on this policy class?" is decidable by
    enumeration. This module does exactly that, yielding the yardstick
    against which every practical mechanism's completeness is measured.

    Construction: partition the space by [I]-image; on a class where [Q]'s
    observable is constant, answer [Q(a)]; elsewhere answer a violation
    notice. The result is sound (it factors through the image by
    construction) and grants wherever {e any} sound mechanism could: a sound
    [M] granting at [a] must grant [Q(a)] on the whole class of [a], which
    forces [Q] constant there.

    {b Deprecated as an application entry point}: this enumerate-everything
    builder is kept as the differential oracle for {!Refine} and the
    engine's refined drivers. New application code should go through
    [Secpol.Analyze], which picks the refined algorithm (and the engine
    pool, and raw-run caching) behind one config record. *)

type entry = Serve of Program.outcome * Program.Obs.t | Mixed
    (** Per-class verdict: serve [Q]'s common outcome, or deny a mixed
        class. *)

val table :
  Program.view -> Policy.t -> Program.t -> Space.t -> (Value.t, entry) Hashtbl.t
(** The class table underlying {!build}: policy image -> verdict, keeping
    the first-enumerated outcome of each constant class. Exposed so the
    parallel engine can assemble the same table from precomputed runs. *)

val of_table : Policy.t -> Program.t -> (Value.t, entry) Hashtbl.t -> Mechanism.t
(** The maximal mechanism answering from a precomputed class table. *)

val classes_of_table : (Value.t, entry) Hashtbl.t -> int * int
(** [(constant_classes, total_classes)] of a class table. *)

val build :
  ?view:Program.view -> Policy.t -> Program.t -> Space.t -> Mechanism.t
(** [build ~view i q space] precomputes the class table (one run of [Q] per
    point of the space) and returns the maximal sound mechanism. With
    [`Timed], [Q]'s step count must also be constant on a class for the
    class to be granted — the stricter notion matching an observable clock.
    The returned mechanism only answers on inputs of [space].

    The mechanism replies in O(1) per call after the precomputation. *)

val granted_classes : ?view:Program.view -> Policy.t -> Program.t -> Space.t -> int * int
(** [(constant_classes, total_classes)] — how many policy classes the
    maximal mechanism can serve. *)
