(** Partition refinement over the I-kernel.

    The brute-force yardstick ({!Maximal.table}, {!Soundness.check}) runs
    [Q] (or the mechanism) on every point of the space. This module gets
    the same answers from far fewer runs: partition the space by policy
    image first — a pure projection, no interpreter run — then refine each
    class member-by-member in enumeration order, stopping at the first
    observable split. A class whose members all agree is constant
    (servable); one that splits is mixed; nothing after the split needs
    evaluating.

    Every result is {b bit-identical} to the brute-force builder's: the
    class table keeps the first-enumerated outcome of each constant class,
    the soundness witness is the one the sequential scan would report, and
    the granted/total tallies match count for count. The brute path stays
    in-tree as the differential oracle (see [test/test_refine.ml] and the
    bench gate). *)

type partition = {
  points : Value.t array array;
      (** the whole space, in {!Space.enumerate} (lexicographic) order *)
  keys : Value.t array;  (** class keys ([I(a)]), in first-member order *)
  members : int array array;
      (** [members.(c)] = indices into [points], ascending *)
}

type stats = {
  space_size : int;
  class_count : int;
  runs : int;  (** evaluations actually performed *)
  saved : int;  (** [space_size - runs]: evaluations the refinement skipped *)
}

val partition : Policy.t -> Space.t -> partition
(** Group the space by policy image. Classes are numbered in order of
    first appearance, members listed in enumeration order — the invariant
    every bit-identity argument below rests on. *)

val refine_class :
  view:Program.view ->
  run:(Value.t array -> Program.outcome) ->
  partition ->
  int ->
  Maximal.entry * int
(** [refine_class ~view ~run pt c] refines class [c]: runs the first
    member, then each further member until one disagrees ([Mixed]) or the
    class is exhausted ([Serve] of the first member's outcome). Returns
    the entry and the number of runs spent. Exposed so parallel drivers
    ({!Secpol_engine.Exhaustive}) refine one class per task with exactly
    these semantics. *)

val table :
  Program.view ->
  Policy.t ->
  Program.t ->
  Space.t ->
  (Value.t, Maximal.entry) Hashtbl.t
(** Refined drop-in for {!Maximal.table}: same keys, same entries. *)

val table_stats :
  Program.view ->
  Policy.t ->
  Program.t ->
  Space.t ->
  (Value.t, Maximal.entry) Hashtbl.t * stats

val build : ?view:Program.view -> Policy.t -> Program.t -> Space.t -> Mechanism.t
(** Refined drop-in for {!Maximal.build}. *)

val granted_classes :
  ?view:Program.view -> Policy.t -> Program.t -> Space.t -> int * int
(** Refined drop-in for {!Maximal.granted_classes}: (served, total). *)

val grant_count_of_table :
  partition -> (Value.t, Maximal.entry) Hashtbl.t -> int * int
(** [(granted, total)] points of the maximal mechanism, read off the class
    table without running the mechanism: a class counts iff it serves a
    proper value. Equals [Completeness.grant_count] of the built mechanism
    under either view. *)

val check :
  ?config:Soundness.config ->
  Policy.t ->
  Mechanism.t ->
  Space.t ->
  Soundness.verdict
(** Refined drop-in for {!Soundness.check}: singleton classes are never
    probed (nothing policy-equivalent to disagree with), and a class is
    skipped once every mismatch it could still produce lies past the best
    witness found. The verdict — witness included — is the one the
    sequential scan reports. *)

val check_stats :
  ?config:Soundness.config ->
  Policy.t ->
  Mechanism.t ->
  Space.t ->
  Soundness.verdict * stats

val table_fingerprint : (Value.t, Maximal.entry) Hashtbl.t -> string
(** Canonical rendering of a class table (entries sorted by key, outcomes
    pinned through the [`Timed] observable) for differential gates: two
    tables fingerprint equal iff they answer identically as mechanisms and
    tally identically as class tables. *)

val pp_stats : Format.formatter -> stats -> unit
