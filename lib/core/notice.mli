(** The violation-notice namespace [F].

    Every layer of the enforcement stack that can fail must land its
    failure in [F] — a violation notice — never in [E] and never in
    silence. The notices themselves used to be string literals scattered
    across the layers ([Dynamic], [Guard], [Coordinator], the server);
    this module is the one place they are enumerated, so the
    exhaustiveness test can check that everything any layer emits is a
    member of [F], and so no two layers can drift into colliding or
    misspelled notices.

    Each notice is deliberately uninformative (a fixed string, no
    diagnostic payload): per-failure diagnostic text would let the
    {e pattern} of failures split a policy-equivalence class — the
    chatty-notice trap of the paper's Example 4. The single exception,
    [Dynamic]'s opt-in chatty mode, still stays inside [F] because its
    text extends the [Λ] prefix. *)

type t =
  | Condemned  (** ["Λ"] — the monitor's verdict on a disallowed flow *)
  | Fuel  (** ["Λ/fuel"] — the step budget ran out before the verdict *)
  | Degraded  (** ["Λ/degraded"] — the guard gave up on a faulty monitor *)
  | Recovery  (** ["Λ/recovery"] — crash recovery found an untrusted journal *)
  | Partition  (** ["Λ/partition"] — distributed merge lost its quorum *)
  | Overload  (** ["Λ/overload"] — the service shed, expired or refused the request *)

val prefix : string
(** ["Λ"] (the two UTF-8 bytes [0xCE 0x9B]). Every member of [F] starts
    with it; no program output does (outputs are integer values). *)

val to_string : t -> string

val of_string : string -> t option
(** Exact inverse of {!to_string} on the enumerated members; [None] for
    anything else (including chatty texts). *)

val all : t list
(** Every notice, in the order declared above. *)

val members : string list
(** [List.map to_string all]. *)

val mem : string -> bool
(** Exact membership in {!members}. *)

val in_f : string -> bool
(** The semantic check: does the string live in the violation-notice
    namespace? True iff it starts with {!prefix}. Strictly wider than
    {!mem} — chatty monitor notices ["Λ: ..."] and the provenance
    classifications ["Λ/explicit"], ["Λ/implicit"], ["Λ/timed"] are in
    [F] without being canonical machinery notices. *)

val describe : t -> string
(** One line: which layer emits it and why. *)
