let notice = "\xce\x9b"

let meet m1 m2 =
  if m1.Mechanism.arity <> m2.Mechanism.arity then
    invalid_arg "Lattice.meet: arity mismatch";
  let respond a =
    let r1 = Mechanism.respond m1 a in
    match r1.Mechanism.response with
    | Mechanism.Granted _ -> (
        match (Mechanism.respond m2 a).Mechanism.response with
        | Mechanism.Granted _ -> r1
        | Mechanism.Denied _ | Mechanism.Hung | Mechanism.Failed _ ->
            { Mechanism.response = Mechanism.Denied notice; steps = 1 })
    | Mechanism.Denied _ | Mechanism.Hung | Mechanism.Failed _ ->
        { Mechanism.response = Mechanism.Denied notice; steps = 1 }
  in
  Mechanism.make
    ~name:(Printf.sprintf "(%s ^ %s)" m1.Mechanism.name m2.Mechanism.name)
    ~arity:m1.Mechanism.arity respond

let grant_set m ~q space =
  List.of_seq
    (Seq.filter (fun a -> Completeness.grants m ~q a) (Space.enumerate space))

let equivalent m1 m2 ~q space =
  Seq.for_all
    (fun a -> Completeness.grants m1 ~q a = Completeness.grants m2 ~q a)
    (Space.enumerate space)

(* Finite security-label lattices. The mechanism lattice above is the
   paper's remark after Theorem 1; this submodule is the other lattice the
   literature attaches to the same model: a finite partial order of
   classification levels (Denning's lattice model), with a per-input label
   assignment reducing to the paper's allow(J) policies — an input may be
   learned iff its label flows to the observer's clearance. *)
module Label = struct
  type order = {
    o_name : string;
    levels : string array;
    index : (string, int) Hashtbl.t;
    o_leq : bool array array;
    o_join : int array array;
    o_meet : int array array;
    o_bottom : int;
    o_top : int;
  }

  let name o = o.o_name
  let levels o = Array.to_list o.levels

  let idx o l =
    match Hashtbl.find_opt o.index l with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Lattice.Label: unknown level %S in order %s" l
             o.o_name)

  let order ~name ~levels ~covers =
    let levels = Array.of_list levels in
    let n = Array.length levels in
    if n = 0 then invalid_arg "Lattice.Label.order: no levels";
    let index = Hashtbl.create n in
    Array.iteri
      (fun i l ->
        if Hashtbl.mem index l then
          invalid_arg (Printf.sprintf "Lattice.Label.order: duplicate level %S" l);
        Hashtbl.add index l i)
      levels;
    let find l =
      match Hashtbl.find_opt index l with
      | Some i -> i
      | None ->
          invalid_arg
            (Printf.sprintf "Lattice.Label.order: cover names unknown level %S" l)
    in
    let leq = Array.init n (fun i -> Array.init n (fun j -> i = j)) in
    List.iter (fun (lo, hi) -> leq.(find lo).(find hi) <- true) covers;
    (* Reflexive-transitive closure, then antisymmetry: a cycle would make
       two distinct levels order-equivalent. *)
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if leq.(i).(k) && leq.(k).(j) then leq.(i).(j) <- true
        done
      done
    done;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && leq.(i).(j) && leq.(j).(i) then
          invalid_arg
            (Printf.sprintf "Lattice.Label.order: %S and %S form a cycle"
               levels.(i) levels.(j))
      done
    done;
    (* Every pair must have a least upper bound and a greatest lower bound —
       the lattice property the certifier's join of dependency labels
       relies on. *)
    let bound ~up i j =
      let le a b = if up then leq.(a).(b) else leq.(b).(a) in
      let bounds =
        List.filter (fun k -> le i k && le j k) (List.init n Fun.id)
      in
      match List.filter (fun k -> List.for_all (fun k' -> le k k') bounds) bounds with
      | [ k ] -> k
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Lattice.Label.order: %S and %S have no unique %s — not a lattice"
               levels.(i) levels.(j)
               (if up then "least upper bound" else "greatest lower bound"))
    in
    let join = Array.init n (fun i -> Array.init n (fun j -> bound ~up:true i j)) in
    let meet = Array.init n (fun i -> Array.init n (fun j -> bound ~up:false i j)) in
    let fold_all table =
      let acc = ref 0 in
      for i = 1 to n - 1 do acc := table.(!acc).(i) done;
      !acc
    in
    let bottom = fold_all meet and top = fold_all join in
    {
      o_name = name;
      levels;
      index;
      o_leq = leq;
      o_join = join;
      o_meet = meet;
      o_bottom = bottom;
      o_top = top;
    }

  let leq o a b = o.o_leq.(idx o a).(idx o b)
  let join o a b = o.levels.(o.o_join.(idx o a).(idx o b))
  let meet o a b = o.levels.(o.o_meet.(idx o a).(idx o b))
  let bottom o = o.levels.(o.o_bottom)
  let top o = o.levels.(o.o_top)

  let two_point =
    order ~name:"two-point" ~levels:[ "low"; "high" ] ~covers:[ ("low", "high") ]

  let chain ~name levels =
    let rec covers = function
      | a :: (b :: _ as rest) -> (a, b) :: covers rest
      | _ -> []
    in
    order ~name ~levels ~covers:(covers levels)

  let diamond =
    order ~name:"diamond"
      ~levels:[ "bot"; "left"; "right"; "top" ]
      ~covers:[ ("bot", "left"); ("bot", "right"); ("left", "top"); ("right", "top") ]

  type policy = { p_order : order; p_labels : string array; p_clearance : string }

  let policy ~order:o ~labels ~clearance =
    List.iter (fun l -> ignore (idx o l)) labels;
    ignore (idx o clearance);
    { p_order = o; p_labels = Array.of_list labels; p_clearance = clearance }

  let policy_order p = p.p_order
  let clearance p = p.p_clearance
  let arity p = Array.length p.p_labels

  let label p i =
    if i < 0 || i >= Array.length p.p_labels then
      invalid_arg (Printf.sprintf "Lattice.Label.label: input %d out of range" i);
    p.p_labels.(i)

  let labels p = Array.to_list p.p_labels

  (* The reduction to the paper's policy family: input i is visible iff its
     label flows to the clearance. This is exactly the equivalence relation
     allow(J) induces, so every theorem about allow(J) applies verbatim. *)
  let allowed_of p =
    let o = p.p_order in
    let c = p.p_clearance in
    let rec go i acc =
      if i >= Array.length p.p_labels then acc
      else go (i + 1) (if leq o p.p_labels.(i) c then Iset.add i acc else acc)
    in
    go 0 Iset.empty

  let to_policy p = Policy.allow_set (allowed_of p)

  let output_label p deps =
    let o = p.p_order in
    Iset.fold (fun i acc -> join o (label p i) acc) deps (bottom o)

  (* allow(J) as the two-point special case: allowed inputs are public,
     the rest secret, and the observer is cleared for public only. *)
  let of_allow ~arity:k allowed =
    {
      p_order = two_point;
      p_labels =
        Array.init k (fun i -> if Iset.mem i allowed then "low" else "high");
      p_clearance = "low";
    }

  let pp_policy ppf p =
    Format.fprintf ppf "%s[%s -> %s]" p.p_order.o_name
      (String.concat ","
         (Array.to_list
            (Array.mapi (fun i l -> Printf.sprintf "x%d:%s" i l) p.p_labels)))
      p.p_clearance
end

let of_grant_predicate ~name ~q pred =
  let respond a =
    if pred a then begin
      let o = Program.run q a in
      match o.Program.result with
      | Program.Value v ->
          { Mechanism.response = Mechanism.Granted v; steps = o.Program.steps }
      | Program.Diverged -> { Mechanism.response = Mechanism.Hung; steps = o.Program.steps }
      | Program.Fault m -> { Mechanism.response = Mechanism.Failed m; steps = o.Program.steps }
    end
    else { Mechanism.response = Mechanism.Denied notice; steps = 1 }
  in
  Mechanism.make ~name ~arity:q.Program.arity respond
