(* A class is servable iff Q's observable is constant on it. We memoize, per
   policy image, either the common outcome or the fact that the class is
   mixed. *)

type entry = Serve of Program.outcome * Program.Obs.t | Mixed

let table view policy q space =
  let tbl : (Value.t, entry) Hashtbl.t = Hashtbl.create 1024 in
  Seq.iter
    (fun a ->
      let key = Policy.image policy a in
      let o = Program.run q a in
      let obs = Program.observe view o in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key (Serve (o, obs))
      | Some (Serve (_, obs')) ->
          if not (Program.Obs.equal obs obs') then Hashtbl.replace tbl key Mixed
      | Some Mixed -> ())
    (Space.enumerate space);
  tbl

let of_table policy q tbl =
  let respond a =
    let key = Policy.image policy a in
    match Hashtbl.find_opt tbl key with
    | Some (Serve (o, _)) -> (
        match o.Program.result with
        | Program.Value v ->
            { Mechanism.response = Mechanism.Granted v; steps = 1 }
        | Program.Diverged -> { Mechanism.response = Mechanism.Hung; steps = o.Program.steps }
        | Program.Fault m ->
            { Mechanism.response = Mechanism.Failed m; steps = o.Program.steps })
    | Some Mixed | None ->
        { Mechanism.response = Mechanism.Denied "\xce\x9b"; steps = 1 }
  in
  Mechanism.make ~name:(Printf.sprintf "maximal(%s)" q.Program.name)
    ~arity:q.Program.arity respond

let classes_of_table tbl =
  Hashtbl.fold
    (fun _ e (served, total) ->
      match e with Serve _ -> (served + 1, total + 1) | Mixed -> (served, total + 1))
    tbl (0, 0)

let build ?(view = `Value) policy q space =
  of_table policy q (table view policy q space)

let granted_classes ?(view = `Value) policy q space =
  classes_of_table (table view policy q space)
