type t = Condemned | Fuel | Degraded | Recovery | Partition | Overload

let prefix = "\xce\x9b" (* Λ *)

let to_string = function
  | Condemned -> prefix
  | Fuel -> prefix ^ "/fuel"
  | Degraded -> prefix ^ "/degraded"
  | Recovery -> prefix ^ "/recovery"
  | Partition -> prefix ^ "/partition"
  | Overload -> prefix ^ "/overload"

let all = [ Condemned; Fuel; Degraded; Recovery; Partition; Overload ]

let members = List.map to_string all

let of_string s = List.find_opt (fun n -> to_string n = s) all

let mem s = List.exists (String.equal s) members

let in_f s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let describe = function
  | Condemned -> "the monitor condemned a disallowed flow"
  | Fuel -> "the interpreter's step budget ran out before a verdict"
  | Degraded -> "the fail-secure guard gave up on a faulty monitor"
  | Recovery -> "crash recovery found a journal it cannot trust"
  | Partition -> "the distributed merge lost shards it cannot recover"
  | Overload -> "the enforcement service shed, expired or refused the request"
