(* Partition refinement over the I-kernel.

   The brute-force yardstick (Maximal.table) runs Q on every point of the
   space. But the per-class verdict is decided long before the class is
   exhausted: a class is Mixed as soon as ONE member's observable differs
   from the first member's, and only a constant class ever needs every
   member evaluated. So: partition the space by policy image first — the
   image is a pure projection, orders of magnitude cheaper than an
   interpreter run — then refine each class member-by-member in
   enumeration order, stopping at the first split. Everything the brute
   builder keeps (the first-enumerated outcome of a constant class, the
   Mixed marker) is reproduced bit-for-bit; only the Q runs after a
   class's first mismatch are skipped.

   The same kernel refines the soundness check: a singleton class can
   never witness unsoundness (there is nothing policy-equivalent to
   disagree with), and a class stops mattering once its earliest possible
   mismatch lies past the best witness found so far. *)

type partition = {
  points : Value.t array array;  (* the whole space, lexicographic order *)
  keys : Value.t array;  (* class keys, in first-member order *)
  members : int array array;  (* members.(c) = point indices, ascending *)
}

type stats = {
  space_size : int;
  class_count : int;
  runs : int;
  saved : int;  (* space_size - runs: evaluations the refinement skipped *)
}

(* Structural fast path for [allow(J)]: under lexicographic enumeration
   the I-kernel is pure index arithmetic. Strides decrease with position,
   and for any position [p], [sum_{q>p} (|D_q|-1) * stride_q = stride_p - 1]
   (telescoping) — so digits at a position dominate every lower digit even
   when the positions in between belong to the other set. Hence classes in
   ascending allowed-digit order ARE the first-appearance order the generic
   hash pass produces, and members in ascending disallowed-digit order ARE
   ascending point indices. Only valid when every domain's values are
   pairwise distinct: a duplicated domain value would make two digit
   combinations carry the same image, which the hash pass merges and index
   arithmetic must not. *)
let structural_members policy space n =
  match Policy.allowed_indices policy with
  | None -> None
  | Some j ->
      let k = Space.arity space in
      let doms = Array.init k (Space.domain space) in
      let distinct d =
        let ok = ref true in
        Array.iteri
          (fun i x ->
            Array.iteri
              (fun l y -> if l > i && Value.equal x y then ok := false)
              d)
          d;
        !ok
      in
      if not (Array.for_all distinct doms) then None
      else begin
        let sizes = Array.map Array.length doms in
        let strides = Array.make (max k 1) 1 in
        for i = k - 2 downto 0 do
          strides.(i) <- strides.(i + 1) * sizes.(i + 1)
        done;
        let apos = ref [] and dpos = ref [] in
        for i = k - 1 downto 0 do
          if Iset.mem i j then apos := i :: !apos else dpos := i :: !dpos
        done;
        let apos = Array.of_list !apos and dpos = Array.of_list !dpos in
        let product ps = Array.fold_left (fun acc p -> acc * sizes.(p)) 1 ps in
        let nclasses = product apos and csize = product dpos in
        if nclasses * csize <> n then None
        else
          Some
            (Array.init nclasses (fun c ->
                 let base = ref 0 and cc = ref c in
                 for t = Array.length apos - 1 downto 0 do
                   let p = apos.(t) in
                   base := !base + (!cc mod sizes.(p)) * strides.(p);
                   cc := !cc / sizes.(p)
                 done;
                 let base = !base in
                 Array.init csize (fun m ->
                     let idx = ref base and mm = ref m in
                     for t = Array.length dpos - 1 downto 0 do
                       let p = dpos.(t) in
                       idx := !idx + (!mm mod sizes.(p)) * strides.(p);
                       mm := !mm / sizes.(p)
                     done;
                     !idx)))
      end

let generic_partition policy points =
  let n = Array.length points in
  let ids : (Value.t, int) Hashtbl.t = Hashtbl.create 1024 in
  let keys_rev = ref [] in
  let nclasses = ref 0 in
  let class_of = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    let key = Policy.image policy points.(i) in
    let c =
      match Hashtbl.find_opt ids key with
      | Some c -> c
      | None ->
          let c = !nclasses in
          Hashtbl.add ids key c;
          keys_rev := key :: !keys_rev;
          incr nclasses;
          c
    in
    class_of.(i) <- c
  done;
  let k = !nclasses in
  let keys = Array.make k Value.unit in
  List.iteri (fun j key -> keys.(k - 1 - j) <- key) !keys_rev;
  let sizes = Array.make k 0 in
  for i = 0 to n - 1 do
    sizes.(class_of.(i)) <- sizes.(class_of.(i)) + 1
  done;
  let members = Array.init k (fun c -> Array.make sizes.(c) 0) in
  let fill = Array.make k 0 in
  for i = 0 to n - 1 do
    let c = class_of.(i) in
    members.(c).(fill.(c)) <- i;
    fill.(c) <- fill.(c) + 1
  done;
  { points; keys; members }

let partition policy space =
  let points = Array.of_seq (Space.enumerate space) in
  match structural_members policy space (Array.length points) with
  | Some members ->
      let keys =
        Array.map (fun ms -> Policy.image policy points.(ms.(0))) members
      in
      { points; keys; members }
  | None -> generic_partition policy points

let stats_of pt ~runs =
  let n = Array.length pt.points in
  {
    space_size = n;
    class_count = Array.length pt.keys;
    runs;
    saved = n - runs;
  }

(* One class, refined: evaluate members in enumeration order against the
   first member's observable, stop at the first split. Returns the brute
   builder's entry for the class — Serve keeps the FIRST member's outcome,
   exactly as Maximal.table's "keep the first-enumerated outcome" does —
   plus the number of runs spent. Factored out so the parallel driver
   (Exhaustive) refines the very same way, one class per pool task. *)
let refine_class ~view ~run pt c =
  let ms = pt.members.(c) in
  let n = Array.length ms in
  let o0 = run pt.points.(ms.(0)) in
  let obs0 = Program.observe view o0 in
  let rec go i =
    if i >= n then (Maximal.Serve (o0, obs0), n)
    else
      let o = run pt.points.(ms.(i)) in
      if Program.Obs.equal (Program.observe view o) obs0 then go (i + 1)
      else (Maximal.Mixed, i + 1)
  in
  go 1

let table_stats view policy q space =
  let pt = partition policy space in
  let tbl : (Value.t, Maximal.entry) Hashtbl.t = Hashtbl.create 1024 in
  let runs = ref 0 in
  Array.iteri
    (fun c _ ->
      let entry, r = refine_class ~view ~run:(Program.run q) pt c in
      runs := !runs + r;
      Hashtbl.replace tbl pt.keys.(c) entry)
    pt.members;
  (tbl, stats_of pt ~runs:!runs)

let table view policy q space = fst (table_stats view policy q space)

let build ?(view = `Value) policy q space =
  Maximal.of_table policy q (table view policy q space)

let granted_classes ?(view = `Value) policy q space =
  Maximal.classes_of_table (table view policy q space)

(* The maximal mechanism's grant count, read off the class table: a class
   is granted exactly when its entry serves a proper value (the mechanism
   answers [Granted v] there and every member's run produced [v] — that is
   what a constant observable means), so the count is the summed size of
   the value-serving classes. No mechanism or program run is needed:
   equal, grant for grant, to [Completeness.grant_count] of the built
   mechanism. *)
let class_grants = function
  | Maximal.Serve ({ Program.result = Program.Value _; _ }, _) -> true
  | Maximal.Serve _ | Maximal.Mixed -> false

let grant_count_of_table pt tbl =
  let g = ref 0 in
  Array.iteri
    (fun c ms ->
      match Hashtbl.find_opt tbl pt.keys.(c) with
      | Some e when class_grants e -> g := !g + Array.length ms
      | _ -> ())
    pt.members;
  (!g, Array.length pt.points)

let check_stats ?(config = Soundness.default) policy m space =
  let pt = partition policy space in
  let runs = ref 0 in
  let obs_at i =
    incr runs;
    Soundness.canonicalize config
      (Mechanism.observe config.Soundness.view (Mechanism.respond m pt.points.(i)))
  in
  (* (global index of the mismatching point, its class, rep obs, its obs):
     the candidate witness with the smallest global index is exactly the
     one the sequential scan reports. Classes and members are visited in
     enumeration order, and a class is abandoned — or skipped outright —
     once every mismatch it could still produce lies past the best
     candidate. *)
  let best = ref None in
  let beats i = match !best with None -> true | Some (j, _, _, _) -> i < j in
  Array.iteri
    (fun c ms ->
      let n = Array.length ms in
      if n > 1 && beats ms.(1) then begin
        let obs0 = obs_at ms.(0) in
        let rec scan i =
          if i < n && beats ms.(i) then
            let o = obs_at ms.(i) in
            if Program.Obs.equal o obs0 then scan (i + 1)
            else best := Some (ms.(i), c, obs0, o)
        in
        scan 1
      end)
    pt.members;
  let verdict =
    match !best with
    | None -> Soundness.Sound
    | Some (i, c, obs_a, obs_b) ->
        Soundness.Unsound
          {
            Soundness.input_a = pt.points.(pt.members.(c).(0));
            input_b = pt.points.(i);
            obs_a;
            obs_b;
          }
  in
  (verdict, stats_of pt ~runs:!runs)

let check ?config policy m space = fst (check_stats ?config policy m space)

(* A canonical rendering of a class table, for differential gates: entries
   sorted by key, the Serve outcome pinned through the `Timed observable
   (which carries both the result and the step count) alongside the
   observable the table was built at. Two tables fingerprint equal iff
   they would answer identically as mechanisms and count identically as
   class tallies. *)
let table_fingerprint tbl =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Value.compare a b)
  |> List.map (fun (k, e) ->
         let entry =
           match e with
           | Maximal.Mixed -> "mixed"
           | Maximal.Serve (o, obs) ->
               Printf.sprintf "serve[%s|%s]"
                 (Program.Obs.to_string (Program.observe `Timed o))
                 (Program.Obs.to_string obs)
         in
         Printf.sprintf "%s=%s" (Value.to_string k) entry)
  |> String.concat ";"

let pp_stats ppf s =
  Format.fprintf ppf "%d point(s) in %d class(es): %d run(s), %d saved"
    s.space_size s.class_count s.runs s.saved
