(** Soundness: does the mechanism enforce the policy?

    [M] is sound for policy [I] iff [M] factors through [I]: there is an
    [M'] with [M(a) = M'(I(a))] for all [a]. Equivalently — and this is the
    executable characterization used here — [M] is constant on every
    equivalence class of the relation [a ~ b <=> I(a) = I(b)].

    Over a finite input space this is decidable by exhaustive partition-and-
    compare, which is exactly what {!check} does. What counts as "[M(a)]" is
    the user-visible observable, so the {!Program.view} matters: a mechanism
    can be sound when only values are observable and unsound once running
    time is part of the output (Theorems 3 vs 3').

    Violation notices are part of [M]'s output: a mechanism whose {e choice
    of notice} (or whose decision to emit one) depends on disallowed data is
    unsound — this is how the model captures leakage-through-error-message
    (Example 4) and negative inference.

    {b Deprecated as an application entry point}: the point-by-point
    {!check} is kept as the differential oracle for {!Refine.check} and
    the engine's refined drivers. New application code should go through
    [Secpol.Analyze], which picks the refined algorithm and the engine
    pool behind one config record. *)

type config = {
  view : Program.view;  (** is running time observable? *)
  identify_violations : bool;
      (** when true, all violation notices are considered equal before
          comparing (the convention used for completeness comparisons); for
          soundness proper this should be [false] unless the mechanism emits
          a single notice anyway *)
}

val default : config
(** [{ view = `Value; identify_violations = false }]. *)

val timed : config

val canonicalize : config -> Program.Obs.t -> Program.Obs.t
(** The observable actually compared by {!check}: identity unless
    [identify_violations], which collapses every violation notice to one.
    Exposed so alternative drivers of the same check (the parallel engine)
    compare exactly what the sequential check compares. *)

type witness = {
  input_a : Value.t array;
  input_b : Value.t array;  (** policy-equivalent to [input_a] *)
  obs_a : Program.Obs.t;
  obs_b : Program.Obs.t;  (** differs from [obs_a]: the leak *)
}

type verdict = Sound | Unsound of witness

val check : ?config:config -> Policy.t -> Mechanism.t -> Space.t -> verdict
(** Exhaustive soundness check over the space. [Sound] is a proof (for this
    space); [Unsound] carries two policy-equivalent inputs that the user can
    tell apart by watching the mechanism. *)

val check_program : ?config:config -> Policy.t -> Program.t -> Space.t -> verdict
(** Soundness of the program as its own mechanism, i.e. "does [Q] reveal
    anything the policy forbids?". *)

val is_sound : ?config:config -> Policy.t -> Mechanism.t -> Space.t -> bool

val pp_verdict : Format.formatter -> verdict -> unit
