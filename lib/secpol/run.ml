module Mechanism = Secpol_core.Mechanism
module Interp = Secpol_flowgraph.Interp
module Hook = Secpol_flowgraph.Hook
module Graph = Secpol_flowgraph.Graph
module Dynamic = Secpol_taint.Dynamic
module Guard = Secpol_fault.Guard
module Runner = Secpol_journal.Runner
module Media = Secpol_journal.Media
module Sink = Secpol_trace.Sink
module Metrics = Secpol_trace.Metrics
module Pool = Secpol_engine.Pool
module Certifier = Secpol_staticflow.Certifier
module Dist_shard = Secpol_dist.Shard
module Dist_coordinator = Secpol_dist.Coordinator

type journal = {
  media : [ `Memory | `Dir of string ];
  snapshot_every : int;
  program_ref : string;
}

type config = {
  policy : Secpol_core.Policy.t option;
  mode : Dynamic.mode;
  fuel : int;
  cost : Secpol_flowgraph.Expr.cost_model;
  hook : Hook.t;
  trace : Sink.t;
  guard : Guard.config option;
  journal : journal option;
  jobs : int;
  residual : bool;
  shards : int;
  metrics : Metrics.t option;
}

let config ?policy ?(mode = Dynamic.Surveillance) ?(fuel = Interp.default_fuel)
    ?(cost = Secpol_flowgraph.Expr.Uniform) ?(hook = Hook.none)
    ?(trace = Sink.null) ?guard ?journal ?(jobs = 1) ?(residual = false)
    ?(shards = 1) ?metrics () =
  { policy; mode; fuel; cost; hook; trace; guard; journal; jobs; residual;
    shards; metrics }

let journal_memory ?(snapshot_every = Runner.default_snapshot_every)
    ~program_ref () =
  { media = `Memory; snapshot_every; program_ref }

let journal_dir ?(snapshot_every = Runner.default_snapshot_every) ~program_ref
    dir =
  { media = `Dir dir; snapshot_every; program_ref }

(* The stack is composed inside-out: monitor (or plain interpreter), then
   journal, then guard. Each layer is the underlying module verbatim, so a
   one-layer config is bit-identical to calling that module directly. *)

let monitored cfg g =
  let emit = Sink.emitter ~graph:g cfg.trace in
  match cfg.policy with
  | Some policy ->
      let dcfg =
        Dynamic.config ~fuel:cfg.fuel ~cost:cfg.cost ~hook:cfg.hook ~emit
          ~mode:cfg.mode policy
      in
      if not cfg.residual then Dynamic.mechanism dcfg g
      else begin
        (* The certifier's watch plan is fixed per (graph, policy) pair;
           compute it once here, outside the respond path. *)
        let plan = Certifier.residual_plan ~allowed:dcfg.Dynamic.allowed g in
        let record stats =
          match cfg.metrics with
          | None -> ()
          | Some m ->
              Metrics.incr (Metrics.counter m "run/residual/runs");
              Metrics.incr
                ~by:stats.Dynamic.watched_boxes
                (Metrics.counter m "run/residual/watched-boxes");
              Metrics.incr
                ~by:stats.Dynamic.skipped_boxes
                (Metrics.counter m "run/residual/skipped-boxes")
        in
        Mechanism.make
          ~name:
            (Printf.sprintf "residual-%s(%s)"
               (Dynamic.mode_name cfg.mode)
               g.Graph.name)
          ~arity:g.Graph.arity
          (fun a ->
            let reply, stats =
              Dynamic.run_residual dcfg ~watch:plan.Certifier.watch g a
            in
            record stats;
            reply)
      end
  | None ->
      if cfg.residual then
        invalid_arg "Run: a residual run needs a policy to certify against";
      Interp.graph_mechanism ~fuel:cfg.fuel ~hook:cfg.hook ~emit g

let journaled cfg j g =
  let policy =
    match cfg.policy with
    | Some p -> p
    | None -> invalid_arg "Run: a journaled run needs a policy"
  in
  let emit = Sink.emitter ~graph:g cfg.trace in
  let dcfg =
    Dynamic.config ~fuel:cfg.fuel ~cost:cfg.cost ~hook:cfg.hook ~emit
      ~mode:cfg.mode policy
  in
  let respond a =
    let media =
      match j.media with `Memory -> Media.memory () | `Dir d -> Media.dir d
    in
    let outcome =
      Runner.run ~snapshot_every:j.snapshot_every ~sink:cfg.trace ~media
        ~program_ref:j.program_ref dcfg g a
    in
    Media.close media;
    match outcome with
    | Runner.Completed r -> r
    | Runner.Killed _ -> assert false (* no kill_at through this path *)
  in
  Mechanism.make
    ~name:(Printf.sprintf "journal(%s)" g.Graph.name)
    ~arity:g.Graph.arity respond

(* Distributed enforcement: deal the policy's disallowed coordinates
   across [cfg.shards] shard enforcers, run them in parallel on the
   engine pool, and merge fail-securely. The guard moves INSIDE each
   shard (a shard is total into E ∪ F on its own); the coordinator's
   merge supplies the outer totalization, collapsing every distributed
   failure to Λ/partition. *)
let distributed cfg g =
  let policy =
    match cfg.policy with
    | Some p -> p
    | None -> invalid_arg "Run: distributed enforcement needs a policy"
  in
  let allowed =
    match Secpol_core.Policy.allowed_indices policy with
    | Some j -> j
    | None ->
        invalid_arg "Run: distributed enforcement needs an allow(J) policy"
  in
  if cfg.residual then
    invalid_arg
      "Run: distributed shards pick their own residual plans; drop the \
       residual flag";
  if cfg.hook != Hook.none then
    invalid_arg
      "Run: distributed shards do not thread a host fault hook; use the \
       distributed chaos sweep for fault injection";
  if cfg.shards > Pool.max_jobs then
    invalid_arg
      (Printf.sprintf "Run: at most %d shards are supported" Pool.max_jobs);
  let guard = Option.value cfg.guard ~default:Guard.default in
  let slices =
    Dist_shard.slices ~shards:cfg.shards ~arity:g.Graph.arity ~allowed
  in
  (* Residual plans are fixed per (graph, sub-policy): compute them once,
     outside the respond path — unjournaled shards only. *)
  let residuals =
    match cfg.journal with
    | Some _ -> [||]
    | None ->
        Array.map
          (fun (sl : Dist_shard.slice) ->
            Certifier.residual_plan ~allowed:sl.Dist_shard.sub_allowed g)
          slices
  in
  let record ~reply stats =
    match cfg.metrics with
    | None -> ()
    | Some m -> Dist_coordinator.record m ~reply stats
  in
  let respond a =
    let shards =
      Array.map
        (fun (sl : Dist_shard.slice) ->
          let i = sl.Dist_shard.shard_id in
          (* Distinct jitter seeds desynchronize co-located shards'
             retry storms while keeping each schedule replayable. *)
          let guard =
            {
              guard with
              Guard.jitter = Option.map (fun s -> s + i) guard.Guard.jitter;
            }
          in
          match cfg.journal with
          | Some j ->
              let journal () =
                match j.media with
                | `Memory -> Media.memory ()
                | `Dir d ->
                    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
                    Media.dir (Filename.concat d (Printf.sprintf "shard-%d" i))
              in
              Dist_shard.create ~guard ~journal
                ~snapshot_every:j.snapshot_every ~sink:cfg.trace ~fuel:cfg.fuel
                ~cost:cfg.cost ~mode:cfg.mode sl g
          | None ->
              Dist_shard.create ~guard ~residual:residuals.(i) ~sink:cfg.trace
                ~fuel:cfg.fuel ~cost:cfg.cost ~mode:cfg.mode sl g)
        slices
    in
    let sink =
      if cfg.jobs > 1 then Sink.synchronized cfg.trace else cfg.trace
    in
    let reply, stats =
      Dist_coordinator.enforce ~sink ~jobs:cfg.jobs
        ~nonce:(Dist_coordinator.fresh_nonce ())
        shards a
    in
    record ~reply stats;
    reply
  in
  Mechanism.make
    ~name:
      (Printf.sprintf "dist%d-%s(%s)" cfg.shards
         (Dynamic.mode_name cfg.mode)
         g.Graph.name)
    ~arity:g.Graph.arity respond

let mechanism cfg g =
  if cfg.shards < 1 then invalid_arg "Run: shards must be at least 1";
  if cfg.shards > 1 then distributed cfg g
  else
  let base =
    match cfg.journal with
    | Some _ when cfg.residual ->
        invalid_arg
          "Run: residual monitoring does not journal (a residual taint \
           image would not resume into a full monitor)"
    | Some j -> journaled cfg j g
    | None -> monitored cfg g
  in
  match cfg.guard with
  | Some gc -> Guard.protect ~config:gc ~sink:cfg.trace base
  | None -> base

let run cfg g a = Mechanism.respond (mechanism cfg g) a

let batch cfg g inputs =
  (match cfg.journal with
  | Some { media = `Dir _; _ } when cfg.jobs > 1 ->
      invalid_arg "Run.batch: parallel runs cannot share a journal directory"
  | _ -> ());
  let cfg =
    if cfg.jobs > 1 then { cfg with trace = Sink.synchronized cfg.trace }
    else cfg
  in
  let arr = Array.of_list inputs in
  let m = mechanism cfg g in
  let replies, stats =
    Pool.map ~jobs:cfg.jobs (Array.length arr) (fun i ->
        Mechanism.respond m arr.(i))
  in
  (Array.to_list replies, stats)

let resume cfg ~resolve ~media =
  Runner.resume
    ~emit:(Sink.emitter cfg.trace)
    ~sink:cfg.trace ~resolve ~media ()

let reply_of_resume res =
  Guard.reply_of_recovery (Result.map (fun r -> r.Runner.reply) res)
