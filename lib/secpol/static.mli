(** Static certification wired into the run stack: prove once, then skip
    (or pre-answer) the monitor.

    {!Secpol_staticflow.Certifier} issues whole-program verdicts; this
    module connects a [Proved] verdict to the execution machinery the rest
    of [Secpol] uses:

    - {!certify} runs the certifier under a {!Run.config}'s policy and
      fuel, so the verdict talks about exactly the stack the config would
      run;
    - {!preseed} converts a [Proved] verdict into warm
      {!Secpol_engine.Cache} entries, one per policy-equivalence class of
      the input space, without ever running the monitor.

    {b Why pre-seeding is sound.} [Proved] means every dependency channel
    of the program — halt checks, decisions (hence the timed monitor's
    condemnation points and the termination channel), and fault sites — is
    confined to allowed inputs. Consequently on every input [a] the
    monitored run grants, and its entire reply (output value, step count,
    fuel denial on divergence, fault message) is a function of the allowed
    coordinates alone, i.e. of the policy image [I(a)]. A plain run on any
    representative of [I(a)]'s class therefore {e is} the monitored reply
    for the whole class, and may be stored under the same
    [(program digest, config tag, I-projection)] key that sound-mechanism
    memoization ({!Secpol_engine.Memo.mechanism}, justified by
    [M = M' ∘ I]) reads — subsequent monitored runs become cache hits.

    The conversion from plain outcome to monitored reply maps [Diverged]
    to the monitor's fuel denial Λ/fuel (not [Hung]: the monitor is a
    watchdogged total function), at the same step count — both machines
    check [steps >= fuel] before committing a box. A parity test pins
    this. *)

val cache_tag : Run.config -> string
(** The configuration fingerprint for {!Secpol_engine.Cache.key}[.tag]:
    mode, fuel, cost model and policy name. Build memoizers for the same
    config with the same tag so {!preseed}'s entries are the ones they
    hit. *)

val certify :
  ?space:Secpol_core.Space.t ->
  ?max_checks:int ->
  Run.config ->
  Secpol_flowgraph.Graph.t ->
  Secpol_staticflow.Certifier.report
(** {!Secpol_staticflow.Certifier.certify_policy} under the config's
    policy and fuel.
    @raise Invalid_argument if the config has no policy, or a non-[allow]
    one. *)

val preseed :
  ?report:Secpol_staticflow.Certifier.report ->
  cache:Secpol_engine.Cache.t ->
  Run.config ->
  Secpol_flowgraph.Graph.t ->
  Secpol_core.Space.t ->
  (int, string) result
(** [preseed ~cache cfg g space] certifies [g] (or reuses [report]) and,
    on [Proved], stores one plain-run reply per policy-equivalence class
    of [space] under [(graph_hash g, cache_tag cfg, I(a))]. Returns the
    number of classes seeded. [Error] (nothing seeded) when the verdict is
    not [Proved], the config has no [allow] policy, the space's arity
    differs from the program's, or the config carries a guard, journal or
    fault hook — layers under which a cached monitored reply would not be
    the stack's reply. *)
