module Value = Secpol_core.Value
module Space = Secpol_core.Space
module Program = Secpol_core.Program
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Refine = Secpol_core.Refine
module Pool = Secpol_engine.Pool
module Cache = Secpol_engine.Cache
module Exhaustive = Secpol_engine.Exhaustive

type algo = Refine | Brute

let algo_name = function Refine -> "refine" | Brute -> "brute"

type config = {
  view : Program.view;
  space : Space.t;
  jobs : int;
  cache : Cache.t option;
  algo : algo;
  identify_violations : bool;
}

let config ?(view = `Value) ?(jobs = 1) ?cache ?(algo = Refine)
    ?(identify_violations = false) space =
  { view; space; jobs; cache; algo; identify_violations }

type telemetry = { refine : Refine.stats option; pool : Pool.stats }

let soundness_config cfg =
  { Soundness.view = cfg.view; identify_violations = cfg.identify_violations }

(* Raw-Q runs are shared through the exact-key cache under the program's
   name; the tag carries the algorithm family but never the view, so
   [`Value] and [`Timed] analyses of the same program hit the same
   entries. The name-as-digest convention means one cache must not see
   two different programs under one name — the facade's caller owns the
   cache, so it owns that invariant too. *)
let share_of cfg (q : Program.t) =
  match cfg.cache with
  | None -> None
  | Some cache ->
      Some
        {
          Exhaustive.cache;
          digest = "analyze:" ^ q.Program.name;
          tag = "raw-Q";
        }

let soundness cfg policy m =
  let config = soundness_config cfg in
  let verdict, pool =
    match cfg.algo with
    | Brute -> Exhaustive.check ~config ~jobs:cfg.jobs policy m cfg.space
    | Refine -> Exhaustive.check_refined ~config ~jobs:cfg.jobs policy m cfg.space
  in
  (verdict, { refine = None; pool })

let maximal cfg policy q =
  match cfg.algo with
  | Brute ->
      let m, pool =
        Exhaustive.build_maximal ~view:cfg.view ~jobs:cfg.jobs policy q cfg.space
      in
      (m, { refine = None; pool })
  | Refine ->
      let m, rstats, pool =
        Exhaustive.build_maximal_refined ~view:cfg.view ~jobs:cfg.jobs
          ?share:(share_of cfg q) policy q cfg.space
      in
      (m, { refine = Some rstats; pool })

let granted_classes cfg policy q =
  match cfg.algo with
  | Brute ->
      let classes, pool =
        Exhaustive.granted_classes ~view:cfg.view ~jobs:cfg.jobs policy q
          cfg.space
      in
      (classes, { refine = None; pool })
  | Refine ->
      let classes, rstats, pool =
        Exhaustive.granted_classes_refined ~view:cfg.view ~jobs:cfg.jobs
          ?share:(share_of cfg q) policy q cfg.space
      in
      (classes, { refine = Some rstats; pool })

let ratio cfg ~q m = Completeness.ratio m ~q cfg.space

let maximal_ratio cfg policy q =
  match cfg.algo with
  | Brute ->
      let m, pool =
        Exhaustive.build_maximal ~view:cfg.view ~jobs:cfg.jobs policy q cfg.space
      in
      (Completeness.ratio m ~q cfg.space, { refine = None; pool })
  | Refine ->
      let (granted, total), rstats, pool =
        Exhaustive.grant_count_refined ~view:cfg.view ~jobs:cfg.jobs
          ?share:(share_of cfg q) policy q cfg.space
      in
      let r =
        if total = 0 then 1.0 else float_of_int granted /. float_of_int total
      in
      (r, { refine = Some rstats; pool })

let pp_telemetry ppf t =
  (match t.refine with
  | Some r -> Format.fprintf ppf "%a;@ " Refine.pp_stats r
  | None -> ());
  Pool.pp_stats ppf t.pool
