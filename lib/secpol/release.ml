module Policy = Secpol_core.Policy
module Program = Secpol_core.Program
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Ast = Secpol_flowgraph.Ast
module Graph = Secpol_flowgraph.Graph
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Certify = Secpol_staticflow.Certify
module Halt_guard = Secpol_staticflow.Halt_guard
module Transforms = Secpol_transform.Transforms
module Search = Secpol_transform.Search

type route =
  | Ship_bare of Program.t
  | Guarded of Graph.t * Mechanism.t
  | Monitored of Mechanism.t
  | Refuse

let route_name = function
  | Ship_bare _ -> "ship-bare"
  | Guarded _ -> "guarded"
  | Monitored _ -> "monitored"
  | Refuse -> "refuse"

type report = {
  route : route;
  mechanism : Mechanism.t;
  completeness : float;
  maximal : float;
  certified : bool;
  notes : string list;
}

let plan ?(search_depth = 2) ~policy ~space (prog : Ast.prog) =
  (match Policy.allowed_indices policy with
  | Some _ -> ()
  | None -> invalid_arg "Release.plan: needs an allow(...) policy");
  let q = Interp.ast_program prog in
  let analyze = Analyze.config space in
  let ratio m = Analyze.ratio analyze ~q m in
  let mx_ratio = fst (Analyze.maximal_ratio analyze policy q) in
  let certified = Certify.certified ~policy prog in
  let finish route mechanism notes =
    {
      route;
      mechanism;
      completeness = ratio mechanism;
      maximal = mx_ratio;
      certified;
      notes = List.rev notes;
    }
  in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  if mx_ratio = 0.0 then begin
    note "no sound mechanism can serve any input: refusing outright";
    finish Refuse (Mechanism.pull_the_plug prog.Ast.arity) !notes
  end
  else if certified then begin
    note "whole-program certification passed: zero-overhead release";
    finish (Ship_bare q) (Certify.mechanism ~policy prog) !notes
  end
  else begin
    note "certification rejected the whole program";
    (* Try the per-halt static route on the duplicated, halt-split graph. *)
    let guarded_graph =
      Transforms.split_halts (Compile.compile (Transforms.sink_into_branches prog))
    in
    let guard = Halt_guard.mechanism ~policy guarded_graph in
    let guard_ratio = ratio guard in
    if guard_ratio >= mx_ratio && guard_ratio > 0.0 then begin
      note "per-halt guard after duplication serves %.0f%%: static route kept"
        (100.0 *. guard_ratio);
      finish (Guarded (guarded_graph, guard)) guard !notes
    end
    else begin
      if guard_ratio > 0.0 then
        note "per-halt guard serves only %.0f%% of the %.0f%% achievable"
          (100.0 *. guard_ratio) (100.0 *. mx_ratio);
      (* Dynamic route: plain surveillance joined with the search's sound
         candidates (the guard included, so the monitor never regresses). *)
      let search = Search.search ~max_depth:search_depth ~policy ~space prog in
      let monitor =
        Mechanism.rename "release-monitor"
          (Mechanism.join search.Search.best guard)
      in
      note "monitoring: transform search joined %d sound candidates (%.0f%%)"
        (List.length search.Search.candidates)
        (100.0 *. ratio monitor);
      (* The construction is sound by composition; verify anyway. *)
      match fst (Analyze.soundness analyze policy monitor) with
      | Soundness.Sound -> finish (Monitored monitor) monitor !notes
      | Soundness.Unsound _ ->
          (* Cannot happen: joins of verified-sound mechanisms. Refuse
             loudly rather than ship a leak if it ever does. *)
          note "verification of the composed monitor failed: refusing";
          finish Refuse (Mechanism.pull_the_plug prog.Ast.arity) !notes
    end
  end
