(** One front door for monitored execution.

    Four run entry points grew up separately — the plain interpreter
    ({!Secpol_flowgraph.Interp}), the dynamic monitor
    ({!Secpol_taint.Dynamic}), the fail-secure supervisor
    ({!Secpol_fault.Guard}) and the durable runner
    ({!Secpol_journal.Runner}) — each with its own optional-argument
    spelling of the same knobs. [Run] composes all four behind a single
    {!config} record:

    - [policy = Some p] runs the monitor for [p]; [None] runs the plain
      interpreter (raw [Q] — never cached, never claimed sound);
    - [journal = Some j] makes the run durable on [j]'s medium;
    - [guard = Some c] supervises the result fail-securely;
    - [trace] receives every layer's events through one sink;
    - [jobs] picks the engine pool width for {!batch}.

    The layering is fixed: guard(journal(monitor | interp)). Each layer is
    the exact underlying module — a config with only [policy] set replies
    bit-identically to calling {!Secpol_taint.Dynamic} yourself. *)

type journal = {
  media : [ `Memory | `Dir of string ];
      (** [`Memory] mints a fresh in-memory medium per run; [`Dir d]
          journals into [d] (reused across runs — last run wins) *)
  snapshot_every : int;
  program_ref : string;  (** how {!resume}'s resolver finds the program *)
}

type config = {
  policy : Secpol_core.Policy.t option;
  mode : Secpol_taint.Dynamic.mode;
  fuel : int;
  cost : Secpol_flowgraph.Expr.cost_model;
  hook : Secpol_flowgraph.Hook.t;
      (** fault-injection hook; must be domain-safe if used with
          [jobs > 1] *)
  trace : Secpol_trace.Sink.t;
  guard : Secpol_fault.Guard.config option;
  journal : journal option;
  jobs : int;  (** engine pool width used by {!batch} *)
  residual : bool;
      (** Monitor under the static certifier's residual plan
          ({!Secpol_staticflow.Certifier.residual_plan}): statically clean
          boxes skip their surveillance work, replies stay bit-identical
          to the fully monitored run. Requires a policy; incompatible with
          [journal] (a residual taint image would not resume into a full
          monitor). The plan is computed once per {!mechanism}. *)
  shards : int;
      (** [> 1] splits each run across that many cooperating shard
          enforcers ({!Secpol_dist.Shard}) merged fail-securely by
          {!Secpol_dist.Coordinator}: the policy's disallowed coordinates
          are dealt round-robin, each shard monitors its sub-policy under
          its own guard (the [guard] config, {!Secpol_fault.Guard.default}
          if unset, with per-shard jitter seeds when jittered) and — when
          [journal] is set — its own medium ([`Dir d] becomes
          [d/shard-<i>]; [`Memory] a fresh medium per shard attempt);
          unjournaled shards run their sub-policy's residual plan. Shards
          execute [jobs] at a time on the engine pool. On a fault-free
          host the reply is bit-identical to the guarded single-enforcer
          run. Requires an [allow(J)] policy; incompatible with
          [residual] (shards pick their own plans) and with [hook] (use
          the distributed chaos sweep for fault injection). *)
  metrics : Secpol_trace.Metrics.t option;
      (** When set, residual runs count into
          ["run/residual/runs"], ["run/residual/watched-boxes"] and
          ["run/residual/skipped-boxes"], and distributed runs into
          ["run/dist/runs"], ["run/dist/rounds"],
          ["run/dist/retransmits"], ["run/dist/lost-shards"] and
          ["run/dist/backoff-steps"]. A registry is single-domain
          mutable state — with [jobs > 1], pass per-worker registries and
          {!Secpol_trace.Metrics.merge} them after the join, or omit. *)
}

val config :
  ?policy:Secpol_core.Policy.t ->
  ?mode:Secpol_taint.Dynamic.mode ->
  ?fuel:int ->
  ?cost:Secpol_flowgraph.Expr.cost_model ->
  ?hook:Secpol_flowgraph.Hook.t ->
  ?trace:Secpol_trace.Sink.t ->
  ?guard:Secpol_fault.Guard.config ->
  ?journal:journal ->
  ?jobs:int ->
  ?residual:bool ->
  ?shards:int ->
  ?metrics:Secpol_trace.Metrics.t ->
  unit ->
  config
(** Defaults: no policy (plain interpretation), [Surveillance],
    {!Secpol_flowgraph.Interp.default_fuel}, [Uniform] cost, no hook,
    null sink, unguarded, unjournaled, [jobs = 1], full (non-residual)
    monitoring, a single enforcer ([shards = 1]), no metrics. *)

val journal_memory : ?snapshot_every:int -> program_ref:string -> unit -> journal

val journal_dir : ?snapshot_every:int -> program_ref:string -> string -> journal

val mechanism : config -> Secpol_flowgraph.Graph.t -> Secpol_core.Mechanism.t
(** The configured stack packaged as a protection mechanism. Journaled
    configurations journal once per [respond].
    @raise Invalid_argument on [residual] without a policy, or combined
    with [journal]. *)

val run :
  config ->
  Secpol_flowgraph.Graph.t ->
  Secpol_core.Value.t array ->
  Secpol_core.Mechanism.reply
(** [Mechanism.respond (mechanism cfg g)].
    @raise Invalid_argument on a journaled config without a policy: the
    durable runner journals monitored runs only. *)

val batch :
  config ->
  Secpol_flowgraph.Graph.t ->
  Secpol_core.Value.t array list ->
  Secpol_core.Mechanism.reply list * Secpol_engine.Pool.stats
(** All inputs through the engine pool ([config.jobs] domains); replies in
    input order — independent of [jobs], like every engine result. With
    [jobs > 1] the trace sink is synchronized (events interleave).
    @raise Invalid_argument on a [`Dir] journal with [jobs > 1]: parallel
    runs cannot share one journal directory. *)

val resume :
  config ->
  resolve:
    (Secpol_journal.Runner.header ->
    (Secpol_flowgraph.Graph.t, string) result) ->
  media:Secpol_journal.Media.t ->
  (Secpol_journal.Runner.resumed, Secpol_journal.Runner.failure) result
(** Crash recovery on [media], tracing to [config.trace]. *)

val reply_of_resume :
  (Secpol_journal.Runner.resumed, Secpol_journal.Runner.failure) result ->
  Secpol_core.Mechanism.reply
(** The supervisor's collapse into [E ∪ F]: a successful resume delivers
    its reply, any failure becomes [Λ/recovery]
    ({!Secpol_fault.Guard.reply_of_recovery}). *)
