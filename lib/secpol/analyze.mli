(** One front door for exhaustive analysis.

    What {!Run} did for monitored execution, [Analyze] does for the
    measuring apparatus: the soundness check, the maximal-mechanism
    yardstick (paper Theorem 2) and the completeness ratio all answer to
    one {!config} record instead of scattered direct calls into
    {!Secpol_core.Soundness}, {!Secpol_core.Maximal} and
    {!Secpol_engine.Exhaustive}.

    - [algo = Refine] (the default) runs partition refinement over the
      I-kernel ({!Secpol_core.Refine}): group the space by policy image,
      run [Q] once per representative until each class is proven constant
      or mixed. Orders of magnitude fewer runs on spaces with fat
      classes; {b bit-identical} verdicts, witnesses, mechanisms and
      tallies to the brute path.
    - [algo = Brute] enumerates every point — kept as the differential
      oracle the refined path is gated against (see [test/test_refine.ml]
      and the bench gate), and reachable from the CLI as
      [secpol measure --algo brute].
    - [jobs] spreads either algorithm over the engine {!Pool}; results
      are independent of [jobs].
    - [cache] (refined path only) shares raw-Q runs across calls and
      views through an exact-key {!Secpol_engine.Cache} — see
      {!Secpol_engine.Exhaustive.share}.

    Direct calls to [Soundness.check] / [Maximal.build] /
    [Exhaustive.build_maximal] in application code are deprecated in
    favour of this facade; the core modules stay public as the oracle
    and for single-point uses. *)

type algo = Refine | Brute

val algo_name : algo -> string

type config = {
  view : Secpol_core.Program.view;
  space : Secpol_core.Space.t;
  jobs : int;  (** engine pool width *)
  cache : Secpol_engine.Cache.t option;
      (** shares raw-Q runs (refined path only); the cache keys on the
          program's {e name}, so never show one cache two different
          programs under the same name *)
  algo : algo;
  identify_violations : bool;
      (** collapse violation notices before comparing observables
          ({!Secpol_core.Soundness.config}) *)
}

val config :
  ?view:Secpol_core.Program.view ->
  ?jobs:int ->
  ?cache:Secpol_engine.Cache.t ->
  ?algo:algo ->
  ?identify_violations:bool ->
  Secpol_core.Space.t ->
  config
(** Defaults: [`Value] view, [jobs = 1], no cache, [Refine], violation
    notices kept distinct. *)

type telemetry = {
  refine : Secpol_core.Refine.stats option;
      (** refinement savings; [None] on the brute path and for
          {!soundness} (whose refined driver reports pool stats only) *)
  pool : Secpol_engine.Pool.stats;
}

val soundness_config : config -> Secpol_core.Soundness.config

val soundness :
  config ->
  Secpol_core.Policy.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Soundness.verdict * telemetry
(** The verdict — witness included — of [Soundness.check], whatever the
    algorithm or [jobs]. *)

val maximal :
  config ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Mechanism.t * telemetry
(** The maximal sound mechanism, bit-identical to [Maximal.build]. *)

val granted_classes :
  config ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  (int * int) * telemetry
(** [(served, total)] equivalence classes of the maximal mechanism. *)

val ratio :
  config -> q:Secpol_core.Program.t -> Secpol_core.Mechanism.t -> float
(** [Completeness.ratio] of an arbitrary mechanism against [q] over the
    config's space. Point-wise by nature (an arbitrary mechanism has no
    class structure to refine), so [algo] and [cache] do not apply. *)

val maximal_ratio :
  config ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  float * telemetry
(** The completeness ratio of the maximal mechanism itself — the paper's
    yardstick number. On the refined path this is read directly off the
    class table ({!Secpol_core.Refine.grant_count_of_table}): a class
    grants iff it serves a proper value, so no mechanism is ever built or
    run. Equal to [Completeness.ratio (Maximal.build ...)] under either
    view. *)

val pp_telemetry : Format.formatter -> telemetry -> unit
