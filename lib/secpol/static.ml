module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Program = Secpol_core.Program
module Graph = Secpol_flowgraph.Graph
module Expr = Secpol_flowgraph.Expr
module Hook = Secpol_flowgraph.Hook
module Interp = Secpol_flowgraph.Interp
module Dynamic = Secpol_taint.Dynamic
module Certifier = Secpol_staticflow.Certifier
module Refine = Secpol_core.Refine
module Runner = Secpol_journal.Runner
module Cache = Secpol_engine.Cache
module Sink = Secpol_trace.Sink

let cost_name = function
  | Expr.Uniform -> "uniform"
  | Expr.Operand_sized -> "operand-sized"

let cache_tag (cfg : Run.config) =
  let policy =
    match cfg.Run.policy with Some p -> Policy.name p | None -> "none"
  in
  Printf.sprintf "run|%s|fuel=%d|cost=%s|%s"
    (Dynamic.mode_name cfg.Run.mode)
    cfg.Run.fuel (cost_name cfg.Run.cost) policy

let certify ?space ?max_checks (cfg : Run.config) g =
  match cfg.Run.policy with
  | None -> invalid_arg "Static.certify: the config has no policy to certify"
  | Some p ->
      Certifier.certify_policy ~fuel:cfg.Run.fuel ?space ?max_checks ~policy:p
        g

(* The reply a monitored run of a PROVED program returns, computed from a
   plain (unmonitored) run. [Interp.reply_of_outcome] is not reusable here:
   it maps [Diverged] to [Hung], but the monitor is a watchdogged total
   function that reports fuel exhaustion as the distinguished denial
   Λ/fuel — and both machines trip the check at the same step count. *)
let reply_of_plain (o : Program.outcome) =
  let response =
    match o.Program.result with
    | Program.Value v -> Mechanism.Granted v
    | Program.Diverged -> Mechanism.Denied Dynamic.fuel_notice
    | Program.Fault m -> Mechanism.Failed m
  in
  { Mechanism.response; steps = o.Program.steps }

let preseed ?report ~cache (cfg : Run.config) g space =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match cfg.Run.policy with
  | None -> err "preseed: the config has no policy"
  | Some policy -> (
      match Policy.allowed_indices policy with
      | None -> err "preseed: %s is not an allow(...) policy" (Policy.name policy)
      | Some _ ->
          if cfg.Run.guard <> None then
            err "preseed: a guarded stack rewrites replies; refusing to seed"
          else if cfg.Run.journal <> None then
            err "preseed: journaled runs are not cached"
          else if not (cfg.Run.hook == Hook.none) then
            err "preseed: a fault hook makes replies input-history-dependent"
          else if Space.arity space <> g.Graph.arity then
            err "preseed: space arity %d, program arity %d" (Space.arity space)
              g.Graph.arity
          else
            let report =
              match report with
              | Some r -> r
              | None -> certify ~space cfg g
            in
            if report.Certifier.verdict <> Certifier.Proved then
              err "preseed: verdict is %s, only proved programs pre-seed"
                (Certifier.verdict_name report.Certifier.verdict)
            else begin
              let digest = Runner.graph_hash g in
              let tag = cache_tag cfg in
              (* One representative per policy-equivalence class: the
                 I-kernel partition's classes come keyed and in
                 first-appearance order, and each class's first member is
                 exactly the representative the old enumerate-and-dedup
                 loop seeded. *)
              let pt = Refine.partition policy space in
              Array.iteri
                (fun c ms ->
                  let a = pt.Refine.points.(ms.(0)) in
                  let key =
                    { Cache.digest; tag; projection = pt.Refine.keys.(c) }
                  in
                  ignore
                    (Cache.find_or_compute cache key (fun () ->
                         reply_of_plain
                           (Interp.run_graph ~fuel:cfg.Run.fuel
                              ~cost:cfg.Run.cost g a))))
                pt.Refine.members;
              Ok (Array.length pt.Refine.keys)
            end)
