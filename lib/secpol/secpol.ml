(** The library under one roof.

    [Secpol] re-exports the model ({!Policy}, {!Mechanism}, {!Soundness},
    ...), the flowchart language ({!Ast}, {!Graph}, {!Compile}, ...), the
    enforcement constructions ({!Dynamic}, {!Certify}, {!Instrument}, ...)
    and the measuring apparatus, so applications need a single library
    dependency — and adds {!Release}, the packaged decision procedure for
    "how should this program be let out of the building under this
    policy?". *)

(* The basic model (paper Section 2). *)
module Value = Secpol_core.Value
module Iset = Secpol_core.Iset
module Notice = Secpol_core.Notice
module Space = Secpol_core.Space
module Program = Secpol_core.Program
module Policy = Secpol_core.Policy
module Policy_order = Secpol_core.Policy_order
module Mechanism = Secpol_core.Mechanism
module Soundness = Secpol_core.Soundness
module Completeness = Secpol_core.Completeness
module Maximal = Secpol_core.Maximal
module Refine = Secpol_core.Refine
module Integrity = Secpol_core.Integrity
module Lattice = Secpol_core.Lattice

(* The flowchart language (Section 3's programs). *)
module Var = Secpol_flowgraph.Var
module Expr = Secpol_flowgraph.Expr
module Ast = Secpol_flowgraph.Ast
module Graph = Secpol_flowgraph.Graph
module Compile = Secpol_flowgraph.Compile
module Interp = Secpol_flowgraph.Interp
module Graphalgo = Secpol_flowgraph.Graphalgo

(* Enforcement constructions. *)
module Dynamic = Secpol_taint.Dynamic
module Instrument = Secpol_taint.Instrument
module Certify = Secpol_staticflow.Certify
module Dataflow = Secpol_staticflow.Dataflow
module Lint = Secpol_staticflow.Lint
module Certifier = Secpol_staticflow.Certifier
module Halt_guard = Secpol_staticflow.Halt_guard
module Transforms = Secpol_transform.Transforms
module Graph_ite = Secpol_transform.Graph_ite
module Search = Secpol_transform.Search

(* The fail-secure runtime: fault plans, injection, supervision. *)
module Hook = Secpol_flowgraph.Hook
module Fault_plan = Secpol_fault.Plan
module Injector = Secpol_fault.Injector
module Guard = Secpol_fault.Guard
module Chaos = Secpol_fault.Sweep
module Crash = Secpol_fault.Crash

(* Distributed enforcement: cooperating shard enforcers, the fail-secure
   merge, and their chaos sweep. *)
module Dist_msg = Secpol_dist.Msg
module Dist_net = Secpol_dist.Net
module Dist_plan = Secpol_dist.Plan
module Shard = Secpol_dist.Shard
module Coordinator = Secpol_dist.Coordinator
module Dist_chaos = Secpol_dist.Sweep

(* Durable runs and tracing. *)
module Media = Secpol_journal.Media
module Runner = Secpol_journal.Runner
module Sink = Secpol_trace.Sink
module Metrics = Secpol_trace.Metrics

(* The parallel enforcement engine and the unified run API. *)
module Pool = Secpol_engine.Pool
module Cache = Secpol_engine.Cache
module Memo = Secpol_engine.Memo
module Exhaustive = Secpol_engine.Exhaustive
module Run = Run
module Static = Static
module Analyze = Analyze

(* Measurement. *)
module Partition = Secpol_probe.Partition
module Leakage = Secpol_probe.Leakage
module Sampled = Secpol_probe.Sampled

(* Concrete syntax. *)
module Source = Secpol_lang.Source

module Release = Release
