(** The fail-secure merge: one reply in [E ∪ F] from many shard reports.

    The coordinator launches every shard on the input, collects their
    framed {!Msg} reports off the {!Net} under a deadline, requests
    retransmissions with jittered exponential backoff, and merges what
    arrived. The merge direction is the whole point: {b a lost or lying
    shard can cost completeness, never soundness}.

    - A {e grant} needs unanimity: every shard reported, no report was
      invalid, all verdicts granted the same value in the same step
      count. Anything less and no value flows.
    - A {e denial} needs only evidence. With every report in hand the
      merged denial is the minimum over shard denials ordered by
      (steps, notice rank Λ < Λ/fuel < fault notices) — exactly the full
      monitor's first check, reconstructed ({!Shard}). With shards
      missing, a surviving {e monitor} denial (Λ or Λ/fuel: a verdict
      about the program, valid whatever other shards would have said) is
      still delivered, smallest first.
    - Everything else — timeouts, quorum failure, disagreeing
      duplicates, grants with shards missing — collapses to the fresh
      violation notice {!partition_notice} ∈ F.

    Reports are validated before they count: frame checksum and codec
    version ({!Msg.decode}), the run nonce, shard id range, shard count
    and the watch mask the coordinator assigned. Duplicates must be
    content-identical ({!Msg.content_equal}) — the merge is idempotent
    under duplicated and reordered delivery — and a contradicting
    duplicate poisons the run to {!partition_notice} (some enforcer is
    lying; no grant can be trusted).

    On a fault-free run every report arrives in the first round: no
    backoff is charged and the merged reply is bit-identical — response
    and step count — to the guarded single enforcer's, at any shard
    count. Backoff penalty steps, when charged, are added to the final
    reply's step count exactly like the {!Secpol_fault.Guard}'s own
    backoff. *)

module Mechanism = Secpol_core.Mechanism
module Value = Secpol_core.Value
module Sink = Secpol_trace.Sink

type config = {
  deadline_rounds : int;
      (** network rounds ticked per collection window; the default (4)
          covers the longest {!Net} delay, so delays alone never
          trigger a retransmission *)
  retries : int;  (** retransmission requests per missing shard *)
  backoff_base : int;
      (** window [i]'s expiry charges [backoff_base * 2^(i-1)] penalty
          steps, mirroring {!Secpol_fault.Guard.config} *)
  jitter : int option;
      (** [Some seed] jitters each backoff penalty to [\[p, 2p)] from a
          deterministic {!Secpol_fault.Plan.Rng} stream, as in
          {!Secpol_fault.Guard.config}; [None] keeps the exact
          schedule *)
}

val default : config
(** [{ deadline_rounds = 4; retries = 2; backoff_base = 4; jitter = None }]. *)

val partition_notice : string
(** "Λ/partition" — the single violation notice for every distributed
    failure the merge cannot decide soundly. Deliberately as
    uninformative as [Λ/degraded]: which shard was lost is
    fault-pattern data and must not split a policy class. *)

val fresh_nonce : unit -> int
(** Process-unique run nonces; reports from other runs are rejected. *)

type stats = {
  rounds : int;  (** network rounds consumed *)
  retransmits : int;  (** retransmission requests issued *)
  lost : int;  (** shards with no valid report at merge time *)
  rejected : int;  (** undecodable or misaddressed messages discarded *)
  foreign : int;  (** messages carrying another run's nonce *)
  duplicates : int;  (** redundant deliveries of an already-held report *)
  disagreements : int;
      (** contradicting duplicates or non-unanimous grants — each one
          poisons the run to {!partition_notice} *)
  backoff_steps : int;  (** penalty steps charged into the reply *)
  complete : bool;  (** every shard's report was in hand and agreed *)
}

val enforce :
  ?config:config ->
  ?net:Net.t ->
  ?sink:Sink.t ->
  ?jobs:int ->
  nonce:int ->
  Shard.t array ->
  Value.t array ->
  Mechanism.reply * stats
(** One distributed enforcement: launch the shards ([jobs] of them at a
    time on the engine pool; default 1), feed their reports through
    [net] (default: a perfect network), collect, merge. [sink] receives
    the distributed lifecycle as {!Secpol_trace.Event.Dist} events —
    shard launches, accepted reports, retransmission requests, losses,
    and the final merge; pass a synchronized sink when [jobs > 1].
    @raise Invalid_argument on an empty shard array. *)

val record :
  ?prefix:string ->
  Secpol_trace.Metrics.t ->
  reply:Mechanism.reply ->
  stats ->
  unit
(** Fold one enforcement's [stats] (and its [reply]) into a registry
    under [prefix] (default ["run/dist"]): runs, rounds, retransmits,
    lost shards, rejected/foreign/duplicate messages, disagreements,
    backoff steps, the vote outcome ([votes-complete] /
    [votes-incomplete]) and — when the reply collapsed to
    {!partition_notice} — [partition-collapses]. One vocabulary for the
    {!Secpol.Run} facade, the chaos sweeps and the service's
    [/metrics]. *)
