(** One shard enforcer: a cooperating monitor that watches a slice of
    the policy.

    The policy [allow(J)] over arity [k] disallows the coordinate set
    [D = {0..k-1} \ J]. {!slices} deals [D] round-robin across [n]
    shards; shard [s] receives the watch set [D_s] and enforces the
    {e sub-policy} [allow({0..k-1} \ D_s)] — a coarsening of the real
    policy that still condemns every flow of a [D_s] coordinate. The
    full monitor's verdict decomposes over the shards: its first
    disallowed-taint check is the earliest check any shard fires, so the
    coordinator's minimum-step merge over sub-policy verdicts
    reconstructs the single enforcer's reply exactly ({!Coordinator}).

    Each shard runs its sub-policy under its own {!Secpol_fault.Guard}
    (so a shard is total into [E ∪ F] whatever its monitor does) and,
    unjournaled, under the {!Secpol_staticflow.Certifier.residual_plan}
    for its sub-policy — the static certificate of what a shard may skip
    while staying bit-identical. Journaled shards run the full
    sub-policy monitor through {!Secpol_journal.Runner} on their own
    {!Secpol_journal.Media} instead (the residual monitor's skipped
    taint state cannot be checkpointed), which buys them crash recovery:
    a shard killed mid-run answers a later retransmission request by
    {!Secpol_journal.Runner.resume}-ing from its journal. *)

module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Graph = Secpol_flowgraph.Graph
module Expr = Secpol_flowgraph.Expr
module Dynamic = Secpol_taint.Dynamic
module Certifier = Secpol_staticflow.Certifier
module Guard = Secpol_fault.Guard
module Injector = Secpol_fault.Injector
module Media = Secpol_journal.Media
module Sink = Secpol_trace.Sink

type slice = {
  shard_id : int;
  shards : int;
  arity : int;
  watch_set : Iset.t;  (** [D_s]: the disallowed coordinates this shard owns *)
  sub_allowed : Iset.t;  (** [{0..arity-1} \ D_s]: its sub-policy's allow set *)
}

val slices : shards:int -> arity:int -> allowed:Iset.t -> slice array
(** Deterministic round-robin over the ascending disallowed
    coordinates. The watch sets partition the disallowed set: their
    union is [D] and they are pairwise disjoint; with more shards than
    disallowed coordinates the surplus shards get an empty watch set and
    act as redundant replicas (they cross-check grant values and step
    counts in the merge).
    @raise Invalid_argument if [shards < 1]. *)

type t

val create :
  ?guard:Guard.config ->
  ?injector:Injector.t ->
  ?journal:(unit -> Media.t) ->
  ?snapshot_every:int ->
  ?residual:Certifier.residual ->
  ?sink:Sink.t ->
  ?fuel:int ->
  ?cost:Expr.cost_model ->
  mode:Dynamic.mode ->
  slice ->
  Graph.t ->
  t
(** A shard enforcer for [slice] of [g]'s policy. [guard] supervises
    every monitored attempt (default {!Guard.default}); [injector]
    threads a {!Secpol_fault.Plan} into the monitor, chaos-sweep style.
    [journal] supplies a fresh medium per monitored attempt (journaled
    shards run the full sub-policy monitor; without it the shard runs
    the residual monitor, with [residual] short-circuiting the
    {!Certifier.residual_plan} computation when the caller already has
    it). [sink] receives the shard's guard/journal events.
    @raise Invalid_argument if [slice] and [g] disagree on arity. *)

val slice : t -> slice
val watch_mask : t -> int

val kill : t -> unit
(** Permanent process death: the shard never responds again — not even
    to retransmission requests. The partition case. *)

val killed : t -> bool

val arm_kill : t -> int -> unit
(** One-shot mid-run death: the next {!execute} dies after journaling
    that many boxes (journaled shards — the journal survives for
    {!retransmit} to recover from) or vanishes outright (unjournaled
    shards, equivalent to {!kill}). *)

val execute : t -> nonce:int -> Value.t array -> string option
(** Run the guarded sub-policy monitor and return the encoded
    {!Msg.report}, or [None] if the shard (was) killed. The report is
    cached for faithful retransmission. *)

val retransmit : t -> nonce:int -> string option
(** Answer a retransmission request for run [nonce]: the cached report
    if one exists for that nonce, else — for a journaled shard that died
    mid-run — the reply recovered by resuming its journal (packaged with
    an incremented attempt; recovery failures degrade fail-secure to a
    denial, never to a grant). [None] if the shard is dead or has
    nothing for that nonce. *)

val resumes : t -> int
(** Retransmissions answered through journal recovery so far. *)
