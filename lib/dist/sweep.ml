module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Space = Secpol_core.Space
module Mechanism = Secpol_core.Mechanism
module Graph = Secpol_flowgraph.Graph
module Dynamic = Secpol_taint.Dynamic
module Certifier = Secpol_staticflow.Certifier
module Paper = Secpol_corpus.Paper_programs
module Json = Secpol_staticflow.Lint.Json
module Metrics = Secpol_trace.Metrics
module Sink = Secpol_trace.Sink
module Pool = Secpol_engine.Pool
module Guard = Secpol_fault.Guard
module Injector = Secpol_fault.Injector
module Media = Secpol_journal.Media
module FReport = Secpol_fault.Report

type totals = {
  runs : int;
  plans : int;
  grants : int;
  recovered : int;
  monitor_denials : int;
  fault_denials : int;
  partitions : int;
  fail_open : int;
  clean_mismatch : int;
  shard_kills : int;
  monitor_faults : int;
  timeouts : int;
  retransmits : int;
  journal_resumes : int;
  lost_shards : int;
  net_dropped : int;
  net_delayed : int;
  net_duplicated : int;
  net_reordered : int;
  net_corrupted : int;
}

type finding = {
  entry : string;
  policy : string;
  seed : int;
  shards : int;
  input : string;
  detail : string;
}

type report = {
  base_seed : int;
  seeds : int;
  mode : Dynamic.mode;
  totals : totals;
  metrics : Metrics.t;
  findings : finding list;
  ok : bool;
  pool : Pool.stats;
}

let max_findings = 20
let fault_free_shard_counts = [ 1; 2; 3; 5 ]

let counter_names =
  [
    "runs";
    "plans";
    "grants";
    "recovered";
    "monitor_denials";
    "fault_denials";
    "partitions";
    "fail_open";
    "clean_mismatch";
    "shard_kills";
    "monitor_faults";
    "timeouts";
    "retransmits";
    "journal_resumes";
    "lost_shards";
    "net_dropped";
    "net_delayed";
    "net_duplicated";
    "net_reordered";
    "net_corrupted";
  ]

let register_counters metrics =
  List.iter (fun n -> ignore (Metrics.counter metrics n)) counter_names;
  ignore (Metrics.histogram metrics "merge_rounds");
  ignore (Metrics.histogram metrics "backoff_steps")

(* Up to [k] inputs spread evenly over the enumeration — enough coverage
   to include condemning and granting inputs without making the sweep
   quadratic in the space. *)
let spread k inputs =
  let arr = Array.of_list inputs in
  let len = Array.length arr in
  if len <= k then inputs
  else
    List.init k (fun i -> arr.(i * (len - 1) / (max 1 (k - 1))))

type task = { t_entry : Paper.entry; t_policy : Policy.t }

type shard_out = { s_metrics : Metrics.t; s_findings : finding list }

let run_task ~mode ~seeds ~base_seed ~inputs_per_case ~sink t =
  let metrics = Metrics.create () in
  register_counters metrics;
  let c name = Metrics.counter metrics name in
  let c_runs = c "runs"
  and c_plans = c "plans"
  and c_grants = c "grants"
  and c_recovered = c "recovered"
  and c_monitor_denials = c "monitor_denials"
  and c_fault_denials = c "fault_denials"
  and c_partitions = c "partitions"
  and c_fail_open = c "fail_open"
  and c_clean_mismatch = c "clean_mismatch"
  and c_shard_kills = c "shard_kills"
  and c_monitor_faults = c "monitor_faults"
  and c_timeouts = c "timeouts"
  and c_retransmits = c "retransmits"
  and c_journal_resumes = c "journal_resumes"
  and c_lost = c "lost_shards"
  and c_net_dropped = c "net_dropped"
  and c_net_delayed = c "net_delayed"
  and c_net_duplicated = c "net_duplicated"
  and c_net_reordered = c "net_reordered"
  and c_net_corrupted = c "net_corrupted" in
  let h_rounds = Metrics.histogram metrics "merge_rounds" in
  let h_backoff = Metrics.histogram metrics "backoff_steps" in
  let findings = ref [] in
  let n_found = ref 0 in
  let note f =
    if !n_found < max_findings then begin
      incr n_found;
      findings := f :: !findings
    end
  in
  let entry = t.t_entry and policy = t.t_policy in
  let g = Paper.graph entry in
  let arity = g.Graph.arity in
  let allowed = Option.get (Policy.allowed_indices policy) in
  let pname = Policy.name policy in
  let inputs =
    spread inputs_per_case (List.of_seq (Space.enumerate entry.Paper.space))
  in
  let clean_mech = Dynamic.mechanism (Dynamic.config ~mode policy) g in
  (* Baselines per input: the raw clean monitor (what a grant must
     match) and the guarded single enforcer (what an undisturbed
     distributed run must be bit-identical to — same guard layering,
     program faults included). *)
  let baselines =
    List.map
      (fun a ->
        ( a,
          Mechanism.respond clean_mech a,
          Guard.reply_of_outcome (Guard.run ~config:Guard.default clean_mech a)
        ))
      inputs
  in
  (* Residual plans depend only on the shard's sub-policy: cache them
     across seeds and inputs. *)
  let residuals : (int, Certifier.residual) Hashtbl.t = Hashtbl.create 16 in
  let residual_for sub_allowed =
    let key = Iset.to_mask sub_allowed in
    match Hashtbl.find_opt residuals key with
    | Some r -> r
    | None ->
        let r = Certifier.residual_plan ~allowed:sub_allowed g in
        Hashtbl.add residuals key r;
        r
  in
  (* One distributed run. Returns (merged reply, disturbed). *)
  let run_dist ~(plan : Plan.t) ~input_idx a =
    let sls = Shard.slices ~shards:plan.Plan.shards ~arity ~allowed in
    let injectors = Array.make plan.Plan.shards None in
    let shards =
      Array.map
        (fun (sl : Shard.slice) ->
          let i = sl.Shard.shard_id in
          let journaled = (plan.Plan.seed + i) land 1 = 0 in
          let injector =
            match plan.Plan.shard_faults.(i) with
            | Plan.Faulty p -> Some (Injector.create p)
            | Plan.Healthy | Plan.Kill -> None
          in
          injectors.(i) <- injector;
          let s =
            if journaled then
              Shard.create ?injector ~journal:(fun () -> Media.memory ())
                ~sink ~mode sl g
            else
              Shard.create ?injector ~residual:(residual_for sl.Shard.sub_allowed)
                ~sink ~mode sl g
          in
          (match plan.Plan.shard_faults.(i) with
          | Plan.Kill ->
              if journaled then Shard.arm_kill s (1 + (plan.Plan.seed + i) mod 5)
              else Shard.kill s
          | Plan.Healthy | Plan.Faulty _ -> ());
          s)
        sls
    in
    let net =
      match plan.Plan.net_seed with
      | Some s -> Net.create ~seed:(s + (97 * input_idx)) ~rate:plan.Plan.net_rate ()
      | None -> Net.create ()
    in
    let config =
      let jitter =
        if Plan.is_fault_free plan then None
        else Some ((plan.Plan.seed * 31) + input_idx)
      in
      if plan.Plan.coordinator_timeout then
        { Coordinator.default with deadline_rounds = 0; retries = 0; jitter }
      else { Coordinator.default with jitter }
    in
    let reply, stats =
      Coordinator.enforce ~config ~net ~sink ~nonce:(Coordinator.fresh_nonce ())
        shards a
    in
    let fired =
      Array.fold_left
        (fun n -> function
          | Some inj -> n + Injector.fired_total inj
          | None -> n)
        0 injectors
    in
    let resumed = Array.fold_left (fun n s -> n + Shard.resumes s) 0 shards in
    let nc = Net.counters net in
    Metrics.incr ~by:stats.Coordinator.retransmits c_retransmits;
    Metrics.incr ~by:resumed c_journal_resumes;
    Metrics.incr ~by:stats.Coordinator.lost c_lost;
    Metrics.incr ~by:nc.Net.dropped c_net_dropped;
    Metrics.incr ~by:nc.Net.delayed c_net_delayed;
    Metrics.incr ~by:nc.Net.duplicated c_net_duplicated;
    Metrics.incr ~by:nc.Net.reordered c_net_reordered;
    Metrics.incr ~by:nc.Net.corrupted c_net_corrupted;
    Metrics.observe h_rounds stats.Coordinator.rounds;
    Metrics.observe h_backoff stats.Coordinator.backoff_steps;
    let disturbed =
      Plan.kills plan > 0 || plan.Plan.coordinator_timeout
      || Net.faults_applied net > 0
      || fired > 0
    in
    (reply, disturbed)
  in
  let classify ~(plan : Plan.t) ~input_idx (a, (clean : Mechanism.reply), guarded)
      =
    let reply, disturbed = run_dist ~plan ~input_idx a in
    Metrics.incr c_runs;
    let fault detail counter =
      Metrics.incr counter;
      note
        {
          entry = entry.Paper.name;
          policy = pname;
          seed = plan.Plan.seed;
          shards = plan.Plan.shards;
          input = FReport.show_input a;
          detail = Printf.sprintf "[plan %s] %s" (Plan.describe plan) detail;
        }
    in
    (match reply.Mechanism.response with
    | Mechanism.Granted v -> (
        match clean.Mechanism.response with
        | Mechanism.Granted w when Value.equal v w ->
            Metrics.incr c_grants;
            if disturbed then Metrics.incr c_recovered
        | _ ->
            fault
              (Printf.sprintf
                 "FAIL-OPEN: merged reply granted %s but clean monitor replied \
                  %s"
                 (Value.to_string v)
                 (FReport.show_response clean.Mechanism.response))
              c_fail_open)
    | Mechanism.Denied notice ->
        if notice = Coordinator.partition_notice then Metrics.incr c_partitions
        else if notice = Dynamic.notice || notice = Dynamic.fuel_notice then
          Metrics.incr c_monitor_denials
        else Metrics.incr c_fault_denials
    | Mechanism.Hung | Mechanism.Failed _ ->
        fault "merge produced a reply outside E \xe2\x88\xaa F" c_fail_open);
    if not disturbed then begin
      if reply <> guarded then
        fault
          (Printf.sprintf
             "undisturbed run not bit-identical: %s vs guarded single \
              enforcer %s"
             (FReport.show_reply reply) (FReport.show_reply guarded))
          c_clean_mismatch
    end
  in
  (* Fault-free pass: bit-identity with the guarded single enforcer at
     every shard count. *)
  List.iter
    (fun shards ->
      let plan = Plan.fault_free ~shards in
      List.iter (fun b -> classify ~plan ~input_idx:0 b) baselines)
    fault_free_shard_counts;
  (* Seeded distributed fault plans. *)
  for seed = base_seed to base_seed + seeds - 1 do
    Metrics.incr c_plans;
    let plan = Plan.generate ~shards:(2 + (seed mod 3)) ~seed () in
    Metrics.incr ~by:(Plan.kills plan) c_shard_kills;
    Metrics.incr ~by:(Plan.monitor_faults plan) c_monitor_faults;
    if plan.Plan.coordinator_timeout then Metrics.incr c_timeouts;
    List.iteri (fun input_idx b -> classify ~plan ~input_idx b) baselines
  done;
  { s_metrics = metrics; s_findings = List.rev !findings }

let tasks_of ~entries =
  List.concat_map
    (fun (entry : Paper.entry) ->
      let g = Paper.graph entry in
      List.map
        (fun policy -> { t_entry = entry; t_policy = policy })
        (FReport.policies_of_arity g.Graph.arity))
    entries

let run ?(entries = Paper.all) ?(mode = Dynamic.Surveillance) ?(seeds = 30)
    ?(base_seed = 0) ?(inputs_per_case = 3) ?(sink = Sink.null) ?(jobs = 1) ()
    =
  let sink = if jobs > 1 then Sink.synchronized sink else sink in
  let tasks = Array.of_list (tasks_of ~entries) in
  let shards, pool =
    Pool.map ~jobs (Array.length tasks) (fun i ->
        run_task ~mode ~seeds ~base_seed ~inputs_per_case ~sink tasks.(i))
  in
  let metrics = Metrics.create () in
  register_counters metrics;
  let c_tasks = Metrics.counter metrics "engine_tasks" in
  Array.iter (fun s -> Metrics.merge ~into:metrics s.s_metrics) shards;
  Metrics.incr ~by:pool.Pool.task_count c_tasks;
  let findings =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | f :: rest -> f :: take (n - 1) rest
    in
    take max_findings
      (List.concat_map (fun s -> s.s_findings) (Array.to_list shards))
  in
  let v name = Metrics.counter_value metrics name in
  let totals =
    {
      runs = v "runs";
      plans = v "plans";
      grants = v "grants";
      recovered = v "recovered";
      monitor_denials = v "monitor_denials";
      fault_denials = v "fault_denials";
      partitions = v "partitions";
      fail_open = v "fail_open";
      clean_mismatch = v "clean_mismatch";
      shard_kills = v "shard_kills";
      monitor_faults = v "monitor_faults";
      timeouts = v "timeouts";
      retransmits = v "retransmits";
      journal_resumes = v "journal_resumes";
      lost_shards = v "lost_shards";
      net_dropped = v "net_dropped";
      net_delayed = v "net_delayed";
      net_duplicated = v "net_duplicated";
      net_reordered = v "net_reordered";
      net_corrupted = v "net_corrupted";
    }
  in
  {
    base_seed;
    seeds;
    mode;
    totals;
    metrics;
    findings;
    ok = totals.fail_open = 0 && totals.clean_mismatch = 0;
    pool;
  }

let report_of r =
  let t = r.totals in
  {
    FReport.title =
      Printf.sprintf
        "distributed chaos sweep: %d plans (%d seeds from %d), mode %s"
        t.plans r.seeds r.base_seed
        (Dynamic.mode_name r.mode);
    params =
      [
        ("base_seed", Json.Int r.base_seed);
        ("seeds", Json.Int r.seeds);
        ("mode", Json.String (Dynamic.mode_name r.mode));
      ];
    metrics = r.metrics;
    rows =
      [
        ("runs", "distributed runs", None);
        ( "grants",
          "grants",
          Some (Printf.sprintf "%d recovered after faults struck" t.recovered)
        );
        ("monitor_denials", "monitor denials", None);
        ("fault_denials", "fault denials", None);
        ("partitions", "partitions", Some "\xce\x9b/partition \xe2\x88\x88 F");
        ("fail_open", "fail-open", None);
        ("clean_mismatch", "clean mismatches", None);
        ("shard_kills", "shard kills", None);
        ("monitor_faults", "monitor-faulty shards", None);
        ("timeouts", "coordinator timeouts", None);
        ("retransmits", "retransmissions", None);
        ("journal_resumes", "journal recoveries", None);
        ("lost_shards", "shards lost", None);
        ("net_dropped", "messages dropped", None);
        ("net_delayed", "messages delayed", None);
        ("net_duplicated", "messages duplicated", None);
        ("net_reordered", "messages reordered", None);
        ("net_corrupted", "messages corrupted", None);
        ("engine_tasks", "engine tasks", None);
      ];
    findings =
      List.map
        (fun f ->
          {
            FReport.subject =
              [
                f.entry;
                f.policy;
                "seed " ^ string_of_int f.seed;
                string_of_int f.shards ^ " shards";
                f.input;
              ];
            fields =
              [
                ("entry", Json.String f.entry);
                ("policy", Json.String f.policy);
                ("seed", Json.Int f.seed);
                ("shards", Json.Int f.shards);
                ("input", Json.String f.input);
              ];
            detail = f.detail;
          })
        r.findings;
    ok = r.ok;
    verdict_ok =
      "fail-secure (no fail-open merge, undisturbed runs bit-identical)";
    verdict_fail = "FAIL-OPEN OR DIVERGENCE FROM SINGLE ENFORCER DETECTED";
  }

let pp ppf r = FReport.pp ppf (report_of r)
let to_json r = FReport.to_json (report_of r)
let to_json_string r = FReport.to_json_string (report_of r)
