(** Distributed chaos sweep: partition/kill/network-fault hunting over
    the corpus.

    For every paper program, every [allow(J)] policy over its inputs and
    every seed in a range, the sweep generates a distributed fault
    {!Plan} — shard kills, injected monitor faults, a lossy {!Net},
    coordinator timeouts — splits the run across that plan's shard count
    and merges through {!Coordinator.enforce}. Two invariants are
    hunted, mirroring the single-enforcer chaos sweep:

    - {b zero fail-open}: a merged grant must equal the clean monitor's
      grant on that input — whatever was killed, dropped, duplicated,
      reordered, corrupted or timed out;
    - {b bit-identity when undisturbed}: a run in which no fault
      actually fired (and no shard was killed or timed out) must be
      bit-identical — response and step count — to the guarded single
      enforcer on the same input. A separate fault-free pass checks that
      identity at shard counts 1, 2, 3 and 5.

    Shards alternate deterministically between residual (unjournaled)
    and journaled execution, so killed journaled shards exercise the
    journal-recovery retransmission path while killed unjournaled
    shards exercise the partition path.

    The sweep decomposes into one engine task per (entry, policy); task
    registries and findings merge in task order, so the report is
    byte-identical at any [jobs]. *)

type totals = {
  runs : int;  (** distributed runs classified *)
  plans : int;  (** (entry, policy, seed) triples swept *)
  grants : int;  (** merged grants, all equal to the clean grant *)
  recovered : int;  (** grants on runs where faults actually struck *)
  monitor_denials : int;  (** merged Λ / Λ/fuel verdicts *)
  fault_denials : int;  (** merged Λ/degraded / Λ/recovery verdicts *)
  partitions : int;  (** merged Λ/partition verdicts *)
  fail_open : int;
  clean_mismatch : int;
  shard_kills : int;  (** killed shards across all plans *)
  monitor_faults : int;  (** monitor-faulty shards across all plans *)
  timeouts : int;  (** plans with a coordinator timeout *)
  retransmits : int;
  journal_resumes : int;  (** retransmissions answered via journal recovery *)
  lost_shards : int;
  net_dropped : int;
  net_delayed : int;
  net_duplicated : int;
  net_reordered : int;
  net_corrupted : int;
}

type finding = {
  entry : string;
  policy : string;
  seed : int;
  shards : int;
  input : string;
  detail : string;
}

type report = {
  base_seed : int;
  seeds : int;
  mode : Secpol_taint.Dynamic.mode;
  totals : totals;
  metrics : Secpol_trace.Metrics.t;
      (** the registry the totals are read from, plus the
          [merge_rounds] and [backoff_steps] histograms *)
  findings : finding list;
  ok : bool;  (** [fail_open = 0 && clean_mismatch = 0] *)
  pool : Secpol_engine.Pool.stats;
      (** scheduling telemetry, outside the deterministic rendering *)
}

val max_findings : int

val fault_free_shard_counts : int list
(** The shard counts (1, 2, 3, 5) every (entry, policy) is checked at
    under a fault-free plan for bit-identity with the guarded single
    enforcer. *)

val run :
  ?entries:Secpol_corpus.Paper_programs.entry list ->
  ?mode:Secpol_taint.Dynamic.mode ->
  ?seeds:int ->
  ?base_seed:int ->
  ?inputs_per_case:int ->
  ?sink:Secpol_trace.Sink.t ->
  ?jobs:int ->
  unit ->
  report
(** Defaults: the whole corpus, [Surveillance] monitors, 30 seeds from
    base seed 0, up to 3 inputs per (entry, policy, plan) spread evenly
    over the entry's input space, [jobs = 1]. Seeded plans run at
    2–4 shards ([2 + seed mod 3]). [sink] receives every distributed
    lifecycle event of the sweep (synchronized when [jobs > 1]). *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Secpol_staticflow.Lint.Json.value
val to_json_string : report -> string
