module Codec = Secpol_journal.Codec
module Frame = Secpol_journal.Frame
module Mechanism = Secpol_core.Mechanism

type report = {
  shard_id : int;
  shards : int;
  nonce : int;
  attempt : int;
  watch_mask : int;
  watched_boxes : int;
  skipped_boxes : int;
  reply : Mechanism.reply;
}

let write_response w = function
  | Mechanism.Granted v ->
      Codec.W.int w 0;
      Codec.write_value w v
  | Mechanism.Denied notice ->
      Codec.W.int w 1;
      Codec.W.string w notice
  | Mechanism.Hung -> Codec.W.int w 2
  | Mechanism.Failed msg ->
      Codec.W.int w 3;
      Codec.W.string w msg

let malformed msg = raise (Codec.Error (Codec.Malformed msg))

let read_response r =
  match Codec.R.int r with
  | 0 -> Mechanism.Granted (Codec.read_value r)
  | 1 -> Mechanism.Denied (Codec.R.string r)
  | 2 -> Mechanism.Hung
  | 3 -> Mechanism.Failed (Codec.R.string r)
  | tag -> malformed (Printf.sprintf "unknown response tag %d" tag)

let encode t =
  let w = Codec.W.create () in
  Codec.write_version w;
  Codec.W.int w t.shard_id;
  Codec.W.int w t.shards;
  Codec.W.int w t.nonce;
  Codec.W.int w t.attempt;
  Codec.W.int w t.watch_mask;
  Codec.W.int w t.watched_boxes;
  Codec.W.int w t.skipped_boxes;
  write_response w t.reply.Mechanism.response;
  Codec.W.int w t.reply.Mechanism.steps;
  Frame.frame (Codec.W.contents w)

let decode bytes =
  Result.bind (Frame.one bytes) (fun payload ->
      Codec.guard (fun () ->
          let r = Codec.R.of_string payload in
          Codec.read_version r;
          let shard_id = Codec.R.int r in
          let shards = Codec.R.int r in
          let nonce = Codec.R.int r in
          let attempt = Codec.R.int r in
          let watch_mask = Codec.R.int r in
          let watched_boxes = Codec.R.int r in
          let skipped_boxes = Codec.R.int r in
          let response = read_response r in
          let steps = Codec.R.int r in
          if not (Codec.R.eof r) then
            malformed "trailing bytes after shard report";
          if shard_id < 0 then malformed "negative shard id";
          if shards < 1 then malformed "shard count below 1";
          if shard_id >= shards then malformed "shard id out of range";
          if attempt < 1 then malformed "attempt below 1";
          if watch_mask < 0 then malformed "negative watch mask";
          if watched_boxes < 0 || skipped_boxes < 0 then
            malformed "negative box counter";
          if steps < 0 then malformed "negative step count";
          {
            shard_id;
            shards;
            nonce;
            attempt;
            watch_mask;
            watched_boxes;
            skipped_boxes;
            reply = { Mechanism.response; steps };
          }))

let content_equal a b =
  a.shard_id = b.shard_id && a.shards = b.shards && a.nonce = b.nonce
  && a.watch_mask = b.watch_mask
  && a.watched_boxes = b.watched_boxes
  && a.skipped_boxes = b.skipped_boxes
  && a.reply = b.reply
