(** A deterministic in-process message network with seeded fault
    injection.

    The shard-to-coordinator channel, modeled as discrete delivery
    rounds: {!send} enqueues a message for the next round, {!tick}
    advances one round and returns what arrives in it. A seeded
    splitmix64 stream ({!Secpol_fault.Plan.Rng} — the same pinned,
    platform-stable generator behind every other chaos sweep here)
    decides per message whether a network fault strikes and which:

    - [`Drop] — the message never arrives;
    - [`Delay] — it arrives 1–3 rounds late;
    - [`Duplicate] — it arrives twice in its round;
    - [`Reorder] — it jumps ahead of the other messages of its round;
    - [`Corrupt] — one bit of its payload flips (which {!Msg.decode}'s
      framing then rejects — corruption downgrades to loss).

    Without a seed the network is perfect: every message arrives exactly
    once, unmodified, in send order, one round after it was sent.
    Deliveries within a round are sorted by a deterministic key, so the
    whole transcript is a pure function of (seed, send sequence) —
    re-running a failing sweep seed replays the exact loss pattern. *)

type fault = Drop | Delay | Duplicate | Reorder | Corrupt

val all_faults : fault list

type counters = {
  sent : int;
  delivered : int;
  dropped : int;
  delayed : int;
  duplicated : int;
  reordered : int;
  corrupted : int;
}

type t

val create : ?seed:int -> ?rate:int -> ?kinds:fault list -> unit -> t
(** [rate] is the per-message fault probability in percent (default 25,
    only meaningful with a [seed]); [kinds] restricts the fault palette
    (default {!all_faults}) — e.g. [[Duplicate; Reorder]] builds the
    delivery-order-independence tests a perfect-content network needs.
    @raise Invalid_argument if [rate] is outside [0,100] or [kinds] is
    empty. *)

val send : t -> string -> unit

val tick : t -> string list
(** Advance one round; the messages due in it, in deterministic order. *)

val round : t -> int
(** Rounds ticked so far. *)

val pending : t -> int
(** Messages still in flight (delayed ones included). *)

val counters : t -> counters

val faults_applied : t -> int
(** Total faults the stream actually injected so far; [0] means every
    delivery so far was perfect and the run must be indistinguishable
    from one on a fault-free network. *)
