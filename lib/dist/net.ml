module Rng = Secpol_fault.Plan.Rng

type fault = Drop | Delay | Duplicate | Reorder | Corrupt

let all_faults = [ Drop; Delay; Duplicate; Reorder; Corrupt ]

type counters = {
  sent : int;
  delivered : int;
  dropped : int;
  delayed : int;
  duplicated : int;
  reordered : int;
  corrupted : int;
}

(* [key] orders deliveries within a round: 0 for normal messages,
   negative (more negative = sent later) for reordered ones, so a
   reordered message overtakes everything that was sent before it.
   [serial] breaks ties in send order — delivery is a pure function of
   the send sequence and the seed. *)
type item = { due : int; key : int; serial : int; payload : string }

type t = {
  rng : Rng.state option;
  rate : int;
  kinds : fault array;
  mutable queue : item list;
  mutable round : int;
  mutable serial : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable delayed : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
}

let create ?seed ?(rate = 25) ?(kinds = all_faults) () =
  if rate < 0 || rate > 100 then invalid_arg "Net.create: rate outside [0,100]";
  if kinds = [] then invalid_arg "Net.create: empty fault palette";
  {
    rng = Option.map Rng.create seed;
    rate;
    kinds = Array.of_list kinds;
    queue = [];
    round = 0;
    serial = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    delayed = 0;
    duplicated = 0;
    reordered = 0;
    corrupted = 0;
  }

let push t ~due ~key payload =
  t.serial <- t.serial + 1;
  t.queue <- { due; key; serial = t.serial; payload } :: t.queue

let flip_one_bit st payload =
  if String.length payload = 0 then payload
  else begin
    let b = Bytes.of_string payload in
    let i = Rng.below st (Bytes.length b) in
    let bit = Rng.below st 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let send t payload =
  t.sent <- t.sent + 1;
  let next = t.round + 1 in
  match t.rng with
  | Some st when t.rate > 0 && Rng.below st 100 < t.rate -> (
      match t.kinds.(Rng.below st (Array.length t.kinds)) with
      | Drop -> t.dropped <- t.dropped + 1
      | Delay ->
          t.delayed <- t.delayed + 1;
          push t ~due:(next + 1 + Rng.below st 3) ~key:0 payload
      | Duplicate ->
          t.duplicated <- t.duplicated + 1;
          push t ~due:next ~key:0 payload;
          push t ~due:next ~key:0 payload
      | Reorder ->
          t.reordered <- t.reordered + 1;
          push t ~due:next ~key:(-t.serial - 1) payload
      | Corrupt ->
          t.corrupted <- t.corrupted + 1;
          push t ~due:next ~key:0 (flip_one_bit st payload))
  | _ -> push t ~due:next ~key:0 payload

let tick t =
  t.round <- t.round + 1;
  let due, rest = List.partition (fun it -> it.due <= t.round) t.queue in
  t.queue <- rest;
  let due =
    List.sort
      (fun a b ->
        match compare a.key b.key with 0 -> compare a.serial b.serial | c -> c)
      due
  in
  t.delivered <- t.delivered + List.length due;
  List.map (fun it -> it.payload) due

let round t = t.round
let pending t = List.length t.queue

let counters t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    delayed = t.delayed;
    duplicated = t.duplicated;
    reordered = t.reordered;
    corrupted = t.corrupted;
  }

let faults_applied t =
  t.dropped + t.delayed + t.duplicated + t.reordered + t.corrupted
