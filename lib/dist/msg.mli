(** Wire messages between shard enforcers and the coordinator.

    A shard's whole contribution to a distributed run is one {!report}:
    which shard it is, which run it answers (the coordinator's nonce),
    which disallowed coordinates it watched, and its proposed
    {!Secpol_core.Mechanism.reply}. Reports travel as single
    {!Secpol_journal.Frame} frames whose payload opens with the journal
    {!Secpol_journal.Codec.format_version}, so the coordinator rejects —
    with a typed error, never a misread — exactly the same damage the
    journal decoder rejects: truncation, checksum failure, foreign layout
    versions, nonsense lengths. {!decode} is total; an undecodable report
    is indistinguishable from a lost one, which the fail-secure merge
    already handles. *)

module Codec = Secpol_journal.Codec
module Mechanism = Secpol_core.Mechanism

type report = {
  shard_id : int;  (** 0-based index within the run's shard array *)
  shards : int;  (** how many shards the sender believes the run has *)
  nonce : int;
      (** the coordinator's run nonce; a report carrying any other nonce
          is a stray from another run and must never be adopted *)
  attempt : int;
      (** 1 for the original report, incremented per retransmission that
          re-derived the reply (journal recovery); ignored by
          {!content_equal} so a recovered retransmission that reproduces
          the original reply bit-for-bit still counts as agreement *)
  watch_mask : int;
      (** {!Secpol_core.Iset.to_mask} of the disallowed coordinates this
          shard watched; the coordinator checks it against the slice it
          assigned — a mismatch means the report cannot be trusted to
          cover its share of the policy *)
  watched_boxes : int;  (** residual-monitor work telemetry, [>= 0] *)
  skipped_boxes : int;
  reply : Mechanism.reply;  (** the shard's proposed verdict *)
}

val encode : report -> string
(** One framed payload, ready for {!Net.send}. *)

val decode : string -> (report, Codec.decode_error) result
(** Total inverse of {!encode} on exact encodings. Rejects torn or
    multi-frame inputs, trailing payload bytes, foreign
    {!Codec.format_version}s, and semantically impossible fields
    (negative ids, [shard_id >= shards], zero attempts, negative
    counters or steps). *)

val content_equal : report -> report -> bool
(** Equality of everything except [attempt] — the merge's idempotence
    relation: duplicated deliveries and faithful retransmissions of one
    report are "the same report", two reports that differ anywhere else
    are a disagreement. *)
