(** Deterministic, seedable fault plans for a whole distributed run.

    The distributed counterpart of {!Secpol_fault.Plan}: one value
    scripts everything that will go wrong in one coordinator + shards
    run — which shards die, which shards' monitors malfunction (reusing
    the single-enforcer fault plans verbatim), how lossy the message
    network is, and whether the coordinator itself times out. Plans are
    pure data derived from an integer seed by the same splitmix64
    stream as every other sweep here, so a failing distributed-chaos
    seed replays bit-for-bit. *)

module Fplan = Secpol_fault.Plan

type shard_fault =
  | Healthy
  | Kill
      (** the shard enforcer process dies: journaled shards die mid-run
          and can later recover from their journal on a retransmission
          request; unjournaled shards are simply gone *)
  | Faulty of Fplan.t
      (** the shard's monitor runs under this injected fault plan *)

type t = {
  seed : int;  (** [-1] for hand-built plans *)
  shards : int;
  shard_faults : shard_fault array;  (** length [shards] *)
  net_seed : int option;  (** [None]: a perfect network *)
  net_rate : int;  (** per-message fault percentage, 0 when perfect *)
  coordinator_timeout : bool;
      (** the coordinator's collection deadline collapses to zero
          rounds and no retries — every shard looks lost *)
}

val fault_free : shards:int -> t
(** Nothing goes wrong: the distributed run must be bit-identical to
    the guarded single-enforcer run. *)

val generate : ?horizon:int -> shards:int -> seed:int -> unit -> t
(** Roughly: each shard is healthy ~60% of the time, monitor-faulty
    ~25% (a {!Fplan.generate} plan over [horizon], default 24) and
    killed ~15%; the network is lossy ~60% of the time at a 20–59%
    fault rate; the coordinator times out ~5% of the time.
    @raise Invalid_argument if [shards < 1]. *)

val is_fault_free : t -> bool

val kills : t -> int
val monitor_faults : t -> int

val describe : t -> string
(** E.g. ["shards 3: kill@1 faulty@2[crash@5]; net(seed 77, 40%); timeout"]. *)

val pp : Format.formatter -> t -> unit
