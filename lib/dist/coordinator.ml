module Mechanism = Secpol_core.Mechanism
module Value = Secpol_core.Value
module Iset = Secpol_core.Iset
module Dynamic = Secpol_taint.Dynamic
module Rng = Secpol_fault.Plan.Rng
module Event = Secpol_trace.Event
module Sink = Secpol_trace.Sink
module Pool = Secpol_engine.Pool

type config = {
  deadline_rounds : int;
  retries : int;
  backoff_base : int;
  jitter : int option;
}

let default = { deadline_rounds = 4; retries = 2; backoff_base = 4; jitter = None }

let partition_notice = Secpol_core.Notice.(to_string Partition) (* Λ/partition *)

let nonce_counter = Atomic.make 1
let fresh_nonce () = Atomic.fetch_and_add nonce_counter 1

type stats = {
  rounds : int;
  retransmits : int;
  lost : int;
  rejected : int;
  foreign : int;
  duplicates : int;
  disagreements : int;
  backoff_steps : int;
  complete : bool;
}

(* Λ and Λ/fuel are verdicts about the monitored program — deterministic,
   valid whatever the other shards would have said. Everything else
   (Λ/degraded, Λ/recovery, Λ/partition) reports a fault of the
   machinery; rank them after the monitor notices so the minimum-step
   merge prefers a real verdict at equal steps. *)
let notice_rank notice =
  if notice = Dynamic.notice then 0
  else if notice = Dynamic.fuel_notice then 1
  else 2

let enforce ?(config = default) ?net ?(sink = Sink.null) ?(jobs = 1) ~nonce
    shards a =
  let n = Array.length shards in
  if n = 0 then invalid_arg "Coordinator.enforce: no shards";
  let net = match net with Some net -> net | None -> Net.create () in
  let expected_mask = Array.map Shard.watch_mask shards in
  let received : Msg.report option array = Array.make n None in
  let rejected = ref 0
  and foreign = ref 0
  and duplicates = ref 0
  and disagreements = ref 0 in
  (* A contradicting duplicate means some enforcer is lying: no grant can
     be trusted, so the run is poisoned straight to Λ/partition. *)
  let poisoned = ref false in
  let emit kind ~shard detail =
    if not (Sink.is_null sink) then
      Sink.emit sink (Event.Dist { kind; shard; round = Net.round net; detail })
  in
  let deliver bytes =
    match Msg.decode bytes with
    | Error _ -> incr rejected
    | Ok r ->
        if r.Msg.nonce <> nonce then incr foreign
        else if
          r.Msg.shards <> n || r.Msg.shard_id < 0 || r.Msg.shard_id >= n
          || r.Msg.watch_mask <> expected_mask.(r.Msg.shard_id)
        then incr rejected
        else begin
          match r.Msg.reply.Mechanism.response with
          | Mechanism.Hung | Mechanism.Failed _ ->
              (* Not an element of E ∪ F: a malfunctioning shard's raw
                 symptom. Discarded — the shard counts as lost. *)
              incr rejected
          | Mechanism.Granted _ | Mechanism.Denied _ -> (
              match received.(r.Msg.shard_id) with
              | None ->
                  received.(r.Msg.shard_id) <- Some r;
                  emit Event.Shard_reply ~shard:r.Msg.shard_id
                    (Printf.sprintf "attempt %d, %d steps" r.Msg.attempt
                       r.Msg.reply.Mechanism.steps)
              | Some prev ->
                  incr duplicates;
                  if not (Msg.content_equal prev r) then begin
                    incr disagreements;
                    poisoned := true
                  end)
        end
  in
  Array.iteri
    (fun i s ->
      emit Event.Shard_start ~shard:i
        (Printf.sprintf "watch %s" (Iset.to_string (Shard.slice s).Shard.watch_set)))
    shards;
  let outs, _pool = Pool.map ~jobs n (fun i -> Shard.execute shards.(i) ~nonce a) in
  Array.iter (function Some bytes -> Net.send net bytes | None -> ()) outs;
  let complete () = Array.for_all Option.is_some received in
  let jitter_rng = Option.map Rng.create config.jitter in
  let backoff = ref 0 and retransmits = ref 0 in
  let window () =
    let budget = ref config.deadline_rounds in
    while (not (complete ())) && (not !poisoned) && !budget > 0 do
      decr budget;
      List.iter deliver (Net.tick net)
    done
  in
  let rec collect attempt =
    window ();
    if (not (complete ())) && (not !poisoned) && attempt <= config.retries
    then begin
      let base = config.backoff_base * (1 lsl (attempt - 1)) in
      let penalty =
        match jitter_rng with
        | Some st when base > 0 -> base + Rng.below st base
        | _ -> base
      in
      backoff := !backoff + penalty;
      Array.iteri
        (fun i r ->
          if r = None then begin
            emit Event.Shard_retry ~shard:i
              (Printf.sprintf "request %d" (attempt + 1));
            incr retransmits;
            match Shard.retransmit shards.(i) ~nonce with
            | Some bytes -> Net.send net bytes
            | None -> ()
          end)
        received;
      collect (attempt + 1)
    end
  in
  collect 1;
  let lost = ref 0 in
  Array.iteri
    (fun i r ->
      if r = None then begin
        incr lost;
        emit Event.Shard_lost ~shard:i "no valid report"
      end)
    received;
  let reports = List.filter_map Fun.id (Array.to_list received) in
  let denials =
    List.filter_map
      (fun (r : Msg.report) ->
        match r.Msg.reply.Mechanism.response with
        | Mechanism.Denied notice ->
            Some (r.Msg.reply.Mechanism.steps, notice_rank notice, notice)
        | _ -> None)
      reports
  in
  let best = function
    | [] -> None
    | d :: ds ->
        Some
          (List.fold_left
             (fun (s, k, nt) (s', k', nt') ->
               if s' < s || (s' = s && (k' < k || (k' = k && nt' < nt))) then
                 (s', k', nt')
               else (s, k, nt))
             d ds)
  in
  let partition = { Mechanism.response = Mechanism.Denied partition_notice; steps = 0 } in
  let all_in = (not !poisoned) && !lost = 0 in
  let merged =
    if all_in then
      match best denials with
      | Some (steps, _, notice) ->
          { Mechanism.response = Mechanism.Denied notice; steps }
      | None -> (
          (* All granted: a value flows only on unanimity, in value AND
             step count — a replica that disagrees is indistinguishable
             from a corrupted enforcer. *)
          match reports with
          | [] -> assert false (* n >= 1 and all_in *)
          | first :: rest ->
              if
                List.for_all
                  (fun (r : Msg.report) -> r.Msg.reply = first.Msg.reply)
                  rest
              then first.Msg.reply
              else begin
                incr disagreements;
                partition
              end)
    else
      (* Shards missing: only a surviving monitor verdict may still be
         delivered; grants need the lost shards' testimony and fault
         notices describe machinery, not the program. *)
      match best (List.filter (fun (_, k, _) -> k <= 1) denials) with
      | Some (steps, _, notice) ->
          { Mechanism.response = Mechanism.Denied notice; steps }
      | None -> partition
  in
  let reply = { merged with Mechanism.steps = merged.Mechanism.steps + !backoff } in
  emit Event.Merge ~shard:(-1)
    (match reply.Mechanism.response with
    | Mechanism.Granted v -> "granted " ^ Value.to_string v
    | Mechanism.Denied notice ->
        Printf.sprintf "denied %s (%d lost)" notice !lost
    | Mechanism.Hung | Mechanism.Failed _ -> assert false);
  ( reply,
    {
      rounds = Net.round net;
      retransmits = !retransmits;
      lost = !lost;
      rejected = !rejected;
      foreign = !foreign;
      duplicates = !duplicates;
      disagreements = !disagreements;
      backoff_steps = !backoff;
      complete = all_in;
    } )

(* One registry vocabulary for distributed enforcement, shared by the Run
   facade, the dist chaos sweep and the service's /metrics: per-run vote
   outcome, the full per-shard tally, and the fail-secure collapses. *)
let record ?(prefix = "run/dist") m ~(reply : Mechanism.reply) (s : stats) =
  let module Metrics = Secpol_trace.Metrics in
  let incr ?by name = Metrics.incr ?by (Metrics.counter m (prefix ^ "/" ^ name)) in
  incr "runs";
  incr ~by:s.rounds "rounds";
  incr ~by:s.retransmits "retransmits";
  incr ~by:s.lost "lost-shards";
  incr ~by:s.rejected "rejected-messages";
  incr ~by:s.foreign "foreign-messages";
  incr ~by:s.duplicates "duplicate-reports";
  incr ~by:s.disagreements "disagreements";
  incr ~by:s.backoff_steps "backoff-steps";
  incr (if s.complete then "votes-complete" else "votes-incomplete");
  match reply.Mechanism.response with
  | Mechanism.Denied n when n = partition_notice -> incr "partition-collapses"
  | Mechanism.Granted _ | Mechanism.Denied _ | Mechanism.Hung
  | Mechanism.Failed _ ->
      ()
