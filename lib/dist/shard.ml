module Iset = Secpol_core.Iset
module Value = Secpol_core.Value
module Policy = Secpol_core.Policy
module Mechanism = Secpol_core.Mechanism
module Graph = Secpol_flowgraph.Graph
module Expr = Secpol_flowgraph.Expr
module Dynamic = Secpol_taint.Dynamic
module Certifier = Secpol_staticflow.Certifier
module Guard = Secpol_fault.Guard
module Injector = Secpol_fault.Injector
module Media = Secpol_journal.Media
module Runner = Secpol_journal.Runner
module Sink = Secpol_trace.Sink

type slice = {
  shard_id : int;
  shards : int;
  arity : int;
  watch_set : Iset.t;
  sub_allowed : Iset.t;
}

let slices ~shards ~arity ~allowed =
  if shards < 1 then invalid_arg "Shard.slices: shards < 1";
  let full = Iset.full arity in
  let allowed = Iset.inter allowed full in
  let disallowed = Iset.diff full allowed in
  let watch = Array.make shards Iset.empty in
  List.iteri
    (fun k c ->
      let s = k mod shards in
      watch.(s) <- Iset.add c watch.(s))
    (Iset.to_list disallowed);
  Array.init shards (fun i ->
      {
        shard_id = i;
        shards;
        arity;
        watch_set = watch.(i);
        sub_allowed = Iset.diff full watch.(i);
      })

type t = {
  slice : slice;
  guard : Guard.config;
  injector : Injector.t option;
  journal : (unit -> Media.t) option;
  snapshot_every : int;
  sink : Sink.t;
  dcfg : Dynamic.config;
  graph : Graph.t;
  residual : Certifier.residual option;  (* None iff journaled *)
  mutable kill_next : int option;
  mutable killed : bool;
  mutable last_media : Media.t option;
  mutable last_stats : Dynamic.residual_stats;
  mutable cached : (int * string) option;  (* (nonce, encoded report) *)
  mutable attempt : int;
  mutable resumes : int;
}

let no_stats = { Dynamic.watched_boxes = 0; skipped_boxes = 0 }

let create ?(guard = Guard.default) ?injector ?journal
    ?(snapshot_every = Runner.default_snapshot_every) ?residual
    ?(sink = Sink.null) ?fuel ?cost ~mode slice g =
  if slice.arity <> g.Graph.arity then
    invalid_arg "Shard.create: slice and graph arity differ";
  let hook = Option.map Injector.hook injector in
  let emit = Sink.emitter ~graph:g sink in
  let dcfg =
    Dynamic.config ?fuel ?cost ?hook ~emit ~mode
      (Policy.allow_set slice.sub_allowed)
  in
  let residual =
    match journal with
    | Some _ -> None (* journaled shards run the full sub-policy monitor *)
    | None -> (
        match residual with
        | Some r -> Some r
        | None -> Some (Certifier.residual_plan ~allowed:slice.sub_allowed g))
  in
  {
    slice;
    guard;
    injector;
    journal;
    snapshot_every;
    sink;
    dcfg;
    graph = g;
    residual;
    kill_next = None;
    killed = false;
    last_media = None;
    last_stats = no_stats;
    cached = None;
    attempt = 1;
    resumes = 0;
  }

let slice t = t.slice
let watch_mask t = Iset.to_mask t.slice.watch_set
let kill t = t.killed <- true
let killed t = t.killed
let arm_kill t at = t.kill_next <- Some (max 1 at)
let resumes t = t.resumes

(* Collapse the leftover non-[E ∪ F] replies of unsupervised paths
   (mid-run death that still completed, journal recovery) the same way
   the guard would: into a denial, never a grant. *)
let fail_secure (reply : Mechanism.reply) =
  match reply.Mechanism.response with
  | Mechanism.Granted _ | Mechanism.Denied _ -> reply
  | Mechanism.Hung | Mechanism.Failed _ ->
      { reply with Mechanism.response = Mechanism.Denied Guard.degraded_notice }

let mechanism t =
  let name =
    Printf.sprintf "shard %d/%d of %s" t.slice.shard_id t.slice.shards
      t.graph.Graph.name
  in
  match t.residual with
  | Some plan ->
      Mechanism.make ~name ~arity:t.slice.arity (fun a ->
          let reply, stats =
            Dynamic.run_residual t.dcfg ~watch:plan.Certifier.watch t.graph a
          in
          t.last_stats <- stats;
          reply)
  | None ->
      Mechanism.make ~name ~arity:t.slice.arity (fun a ->
          let media = (Option.get t.journal) () in
          t.last_media <- Some media;
          match
            Runner.run ~snapshot_every:t.snapshot_every ~sink:t.sink ~media
              ~program_ref:t.graph.Graph.name t.dcfg t.graph a
          with
          | Runner.Completed reply -> reply
          | Runner.Killed _ -> assert false (* no kill_at on this path *))

let package t ~nonce reply =
  let report =
    {
      Msg.shard_id = t.slice.shard_id;
      shards = t.slice.shards;
      nonce;
      attempt = t.attempt;
      watch_mask = Iset.to_mask t.slice.watch_set;
      watched_boxes = t.last_stats.Dynamic.watched_boxes;
      skipped_boxes = t.last_stats.Dynamic.skipped_boxes;
      reply;
    }
  in
  let bytes = Msg.encode report in
  t.cached <- Some (nonce, bytes);
  bytes

let execute t ~nonce a =
  if t.killed then None
  else begin
    t.attempt <- 1;
    t.last_stats <- no_stats;
    t.cached <- None;
    match (t.kill_next, t.journal) with
    | Some at, Some mk -> (
        t.kill_next <- None;
        let media = mk () in
        t.last_media <- Some media;
        match
          Runner.run ~kill_at:at ~snapshot_every:t.snapshot_every ~sink:t.sink
            ~media ~program_ref:t.graph.Graph.name t.dcfg t.graph a
        with
        | Runner.Killed _ ->
            (* Mid-run death: no report goes out, but the journal stays
               behind for [retransmit] to recover from. *)
            None
        | Runner.Completed reply ->
            Some (package t ~nonce (fail_secure reply)))
    | Some _, None ->
        (* No journal: death loses everything, permanently. *)
        t.kill_next <- None;
        t.killed <- true;
        None
    | None, _ ->
        let reply =
          Guard.reply_of_outcome
            (Guard.run ~config:t.guard ?injector:t.injector ~sink:t.sink
               (mechanism t) a)
        in
        Some (package t ~nonce reply)
  end

let retransmit t ~nonce =
  if t.killed then None
  else
    match t.cached with
    | Some (n, bytes) when n = nonce -> Some bytes
    | _ -> (
        match (t.journal, t.last_media) with
        | Some _, Some media ->
            t.attempt <- t.attempt + 1;
            t.resumes <- t.resumes + 1;
            let resolve (h : Runner.header) =
              if h.Runner.graph_hash = Runner.graph_hash t.graph then
                Ok t.graph
              else Error "shard resolver: unknown program"
            in
            let reply =
              Guard.reply_of_recovery
                (Result.map
                   (fun (r : Runner.resumed) -> r.Runner.reply)
                   (Runner.resume ~sink:t.sink ~resolve ~media ()))
            in
            Some (package t ~nonce (fail_secure reply))
        | _ -> None)
