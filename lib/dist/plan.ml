module Fplan = Secpol_fault.Plan
module Rng = Fplan.Rng

type shard_fault = Healthy | Kill | Faulty of Fplan.t

type t = {
  seed : int;
  shards : int;
  shard_faults : shard_fault array;
  net_seed : int option;
  net_rate : int;
  coordinator_timeout : bool;
}

let fault_free ~shards =
  if shards < 1 then invalid_arg "Plan.fault_free: shards < 1";
  {
    seed = -1;
    shards;
    shard_faults = Array.make shards Healthy;
    net_seed = None;
    net_rate = 0;
    coordinator_timeout = false;
  }

let generate ?(horizon = 24) ~shards ~seed () =
  if shards < 1 then invalid_arg "Plan.generate: shards < 1";
  let st = Rng.create seed in
  let shard_faults =
    Array.init shards (fun _ ->
        let r = Rng.below st 100 in
        if r < 15 then Kill
        else if r < 40 then
          Faulty (Fplan.generate ~horizon ~seed:(Rng.below st 0x3FFFFFFF) ())
        else Healthy)
  in
  let lossy = Rng.below st 100 < 60 in
  let net_seed = Rng.below st 0x3FFFFFFF in
  let net_rate = 20 + Rng.below st 40 in
  let coordinator_timeout = Rng.below st 100 < 5 in
  {
    seed;
    shards;
    shard_faults;
    net_seed = (if lossy then Some net_seed else None);
    net_rate = (if lossy then net_rate else 0);
    coordinator_timeout;
  }

let is_fault_free t =
  t.net_seed = None
  && (not t.coordinator_timeout)
  && Array.for_all (function Healthy -> true | Kill | Faulty _ -> false)
       t.shard_faults

let kills t =
  Array.fold_left
    (fun n -> function Kill -> n + 1 | Healthy | Faulty _ -> n)
    0 t.shard_faults

let monitor_faults t =
  Array.fold_left
    (fun n -> function Faulty _ -> n + 1 | Healthy | Kill -> n)
    0 t.shard_faults

let describe t =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "shards %d:" t.shards);
  let any = ref false in
  Array.iteri
    (fun i -> function
      | Healthy -> ()
      | Kill ->
          any := true;
          Buffer.add_string b (Printf.sprintf " kill@%d" i)
      | Faulty p ->
          any := true;
          Buffer.add_string b (Printf.sprintf " faulty@%d[%s]" i (Fplan.describe p)))
    t.shard_faults;
  if not !any then Buffer.add_string b " (all healthy)";
  (match t.net_seed with
  | Some s -> Buffer.add_string b (Printf.sprintf "; net(seed %d, %d%%)" s t.net_rate)
  | None -> ());
  if t.coordinator_timeout then Buffer.add_string b "; timeout";
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (describe t)
