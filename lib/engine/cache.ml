type key = {
  digest : string;
  tag : string;
  projection : Secpol_core.Value.t;
}

(* [Pending] marks a key whose first requester is off computing the verdict
   (outside the lock). Waiters sleep on [cond] until the slot flips to
   [Done] — or disappears, which means the computation raised and the next
   requester should try again. *)
type slot = Done of Secpol_core.Mechanism.reply | Pending

type t = {
  table : (key, slot) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create () =
  {
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    cond = Condition.create ();
    hit_count = 0;
    miss_count = 0;
  }

let find_or_compute c key f =
  Mutex.lock c.lock;
  let rec acquire () =
    match Hashtbl.find_opt c.table key with
    | Some (Done v) ->
        c.hit_count <- c.hit_count + 1;
        Mutex.unlock c.lock;
        v
    | Some Pending ->
        Condition.wait c.cond c.lock;
        acquire ()
    | None ->
        Hashtbl.replace c.table key Pending;
        Mutex.unlock c.lock;
        let v =
          try f ()
          with exn ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock c.lock;
            Hashtbl.remove c.table key;
            Condition.broadcast c.cond;
            Mutex.unlock c.lock;
            Printexc.raise_with_backtrace exn bt
        in
        Mutex.lock c.lock;
        Hashtbl.replace c.table key (Done v);
        c.miss_count <- c.miss_count + 1;
        Condition.broadcast c.cond;
        Mutex.unlock c.lock;
        v
  in
  acquire ()

let find c key =
  Mutex.lock c.lock;
  let r =
    match Hashtbl.find_opt c.table key with
    | Some (Done v) ->
        c.hit_count <- c.hit_count + 1;
        Some v
    | Some Pending | None ->
        c.miss_count <- c.miss_count + 1;
        None
  in
  Mutex.unlock c.lock;
  r

let store c key v =
  Mutex.lock c.lock;
  (* Never overwrite: a resident verdict (or one being computed under
     [find_or_compute]'s compute-once discipline) wins. *)
  (match Hashtbl.find_opt c.table key with
  | Some (Done _ | Pending) -> ()
  | None -> Hashtbl.replace c.table key (Done v));
  Mutex.unlock c.lock

let hits c =
  Mutex.lock c.lock;
  let n = c.hit_count in
  Mutex.unlock c.lock;
  n

let misses c =
  Mutex.lock c.lock;
  let n = c.miss_count in
  Mutex.unlock c.lock;
  n

let size c =
  Mutex.lock c.lock;
  let n = Hashtbl.length c.table in
  Mutex.unlock c.lock;
  n
