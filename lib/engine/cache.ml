type key = {
  digest : string;
  tag : string;
  projection : Secpol_core.Value.t;
}

(* Resident verdicts live on an intrusive doubly-linked recency list:
   [head] is the most recently touched node, [tail] the least — the one a
   full cache evicts. [Pending] slots (first requester off computing the
   verdict outside the lock) are not on the list and are never evicted;
   waiters sleep on [cond] until the slot flips to [Done] — or
   disappears, which means the computation raised and the next requester
   should try again. *)
type node = {
  nkey : key;
  value : Secpol_core.Mechanism.reply;
  mutable prev : node option;  (* toward head (more recent) *)
  mutable next : node option;  (* toward tail (less recent) *)
}

type slot = Done of node | Pending

type t = {
  table : (key, slot) Hashtbl.t;
  capacity : int option;  (* max resident (Done) entries; None = unbounded *)
  mutable head : node option;
  mutable tail : node option;
  mutable resident : int;  (* Done entries only; table also holds Pending *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Cache.create: capacity < 1"
  | _ -> ());
  {
    table = Hashtbl.create 256;
    capacity;
    head = None;
    tail = None;
    resident = 0;
    lock = Mutex.create ();
    cond = Condition.create ();
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
  }

(* List surgery; callers hold [lock]. *)

let unlink c n =
  (match n.prev with Some p -> p.next <- n.next | None -> c.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> c.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.prev <- None;
  n.next <- c.head;
  (match c.head with Some h -> h.prev <- Some n | None -> c.tail <- Some n);
  c.head <- Some n

let touch c n =
  match c.head with
  | Some h when h == n -> ()
  | _ ->
      unlink c n;
      push_front c n

(* Insert a freshly computed verdict at the front, evicting from the tail
   while over capacity. Pending slots are off the list, so an in-flight
   computation can never be evicted out from under its waiters. *)
let insert c k v =
  let n = { nkey = k; value = v; prev = None; next = None } in
  push_front c n;
  Hashtbl.replace c.table k (Done n);
  c.resident <- c.resident + 1;
  match c.capacity with
  | None -> ()
  | Some cap ->
      while c.resident > cap do
        match c.tail with
        | None -> c.resident <- cap (* unreachable: resident nodes are listed *)
        | Some victim ->
            unlink c victim;
            Hashtbl.remove c.table victim.nkey;
            c.resident <- c.resident - 1;
            c.eviction_count <- c.eviction_count + 1
      done

let find_or_compute c key f =
  Mutex.lock c.lock;
  let rec acquire () =
    match Hashtbl.find_opt c.table key with
    | Some (Done n) ->
        touch c n;
        c.hit_count <- c.hit_count + 1;
        Mutex.unlock c.lock;
        n.value
    | Some Pending ->
        Condition.wait c.cond c.lock;
        acquire ()
    | None ->
        Hashtbl.replace c.table key Pending;
        Mutex.unlock c.lock;
        let v =
          try f ()
          with exn ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock c.lock;
            Hashtbl.remove c.table key;
            Condition.broadcast c.cond;
            Mutex.unlock c.lock;
            Printexc.raise_with_backtrace exn bt
        in
        Mutex.lock c.lock;
        insert c key v;
        c.miss_count <- c.miss_count + 1;
        Condition.broadcast c.cond;
        Mutex.unlock c.lock;
        v
  in
  acquire ()

let find c key =
  Mutex.lock c.lock;
  let r =
    match Hashtbl.find_opt c.table key with
    | Some (Done n) ->
        touch c n;
        c.hit_count <- c.hit_count + 1;
        Some n.value
    | Some Pending | None ->
        c.miss_count <- c.miss_count + 1;
        None
  in
  Mutex.unlock c.lock;
  r

let store c key v =
  Mutex.lock c.lock;
  (* Never overwrite: a resident verdict (or one being computed under
     [find_or_compute]'s compute-once discipline) wins. *)
  (match Hashtbl.find_opt c.table key with
  | Some (Done _ | Pending) -> ()
  | None -> insert c key v);
  Mutex.unlock c.lock

let hits c =
  Mutex.lock c.lock;
  let n = c.hit_count in
  Mutex.unlock c.lock;
  n

let misses c =
  Mutex.lock c.lock;
  let n = c.miss_count in
  Mutex.unlock c.lock;
  n

let evictions c =
  Mutex.lock c.lock;
  let n = c.eviction_count in
  Mutex.unlock c.lock;
  n

let size c =
  Mutex.lock c.lock;
  let n = Hashtbl.length c.table in
  Mutex.unlock c.lock;
  n
