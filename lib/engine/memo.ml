open Secpol_core

let wrap ~cache ~digest ~tag ~project (m : Mechanism.t) =
  Mechanism.make
    ~name:(Printf.sprintf "memo(%s)" m.Mechanism.name)
    ~arity:m.Mechanism.arity
    (fun a ->
      let key = { Cache.digest; tag; projection = project a } in
      Cache.find_or_compute cache key (fun () -> Mechanism.respond m a))

let mechanism ~cache ~digest ~tag ~policy m =
  wrap ~cache ~digest ~tag ~project:(Policy.image policy) m

let exact ~cache ~digest ~tag m =
  wrap ~cache ~digest ~tag ~project:(fun a -> Value.tuple (Array.to_list a)) m

let checked ?(config = Soundness.default) ~cache ~digest ~tag ~policy ~space m
    =
  match Soundness.check ~config policy m space with
  | Soundness.Sound as v -> (mechanism ~cache ~digest ~tag ~policy m, v)
  | Soundness.Unsound _ as v -> (m, v)
