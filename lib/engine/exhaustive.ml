open Secpol_core

(* Evaluating [Mechanism.respond] / [Program.run] point-by-point is the
   whole cost of an exhaustive check; the partition scan is hashtable
   lookups. So: pool the evaluations into index-ordered arrays, then replay
   the sequential scan over them — exact parity by construction. *)

let points space = Array.of_seq (Space.enumerate space)

let check ?(config = Soundness.default) ~jobs policy m space =
  let inputs = points space in
  let n = Array.length inputs in
  let cells, stats =
    Pool.map ~jobs n (fun i ->
        let a = inputs.(i) in
        let obs =
          Soundness.canonicalize config
            (Mechanism.observe config.view (Mechanism.respond m a))
        in
        (Policy.image policy a, obs))
  in
  let seen : (Value.t, Value.t array * Program.Obs.t) Hashtbl.t =
    Hashtbl.create 1024
  in
  let rec scan i =
    if i >= n then Soundness.Sound
    else
      let key, obs = cells.(i) in
      match Hashtbl.find_opt seen key with
      | None ->
          Hashtbl.add seen key (inputs.(i), obs);
          scan (i + 1)
      | Some (b, obs_b) ->
          if Program.Obs.equal obs obs_b then scan (i + 1)
          else
            Soundness.Unsound
              {
                Soundness.input_a = b;
                input_b = inputs.(i);
                obs_a = obs_b;
                obs_b = obs;
              }
  in
  (scan 0, stats)

let maximal_table ?(view = `Value) ~jobs policy q space =
  let inputs = points space in
  let n = Array.length inputs in
  let cells, stats =
    Pool.map ~jobs n (fun i ->
        let a = inputs.(i) in
        let o = Program.run q a in
        (Policy.image policy a, o, Program.observe view o))
  in
  let tbl : (Value.t, Maximal.entry) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun (key, o, obs) ->
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key (Maximal.Serve (o, obs))
      | Some (Maximal.Serve (_, obs')) ->
          if not (Program.Obs.equal obs obs') then
            Hashtbl.replace tbl key Maximal.Mixed
      | Some Maximal.Mixed -> ())
    cells;
  (tbl, stats)

let build_maximal ?view ~jobs policy q space =
  let tbl, stats = maximal_table ?view ~jobs policy q space in
  (Maximal.of_table policy q tbl, stats)

let granted_classes ?view ~jobs policy q space =
  let tbl, stats = maximal_table ?view ~jobs policy q space in
  (Maximal.classes_of_table tbl, stats)
