open Secpol_core

(* Evaluating [Mechanism.respond] / [Program.run] point-by-point is the
   whole cost of an exhaustive check; the partition scan is hashtable
   lookups. So: pool the evaluations into index-ordered arrays, then replay
   the sequential scan over them — exact parity by construction. *)

let points space = Array.of_seq (Space.enumerate space)

let check ?(config = Soundness.default) ~jobs policy m space =
  let inputs = points space in
  let n = Array.length inputs in
  let cells, stats =
    Pool.map ~jobs n (fun i ->
        let a = inputs.(i) in
        let obs =
          Soundness.canonicalize config
            (Mechanism.observe config.view (Mechanism.respond m a))
        in
        (Policy.image policy a, obs))
  in
  let seen : (Value.t, Value.t array * Program.Obs.t) Hashtbl.t =
    Hashtbl.create 1024
  in
  let rec scan i =
    if i >= n then Soundness.Sound
    else
      let key, obs = cells.(i) in
      match Hashtbl.find_opt seen key with
      | None ->
          Hashtbl.add seen key (inputs.(i), obs);
          scan (i + 1)
      | Some (b, obs_b) ->
          if Program.Obs.equal obs obs_b then scan (i + 1)
          else
            Soundness.Unsound
              {
                Soundness.input_a = b;
                input_b = inputs.(i);
                obs_a = obs_b;
                obs_b = obs;
              }
  in
  (scan 0, stats)

let maximal_table ?(view = `Value) ~jobs policy q space =
  let inputs = points space in
  let n = Array.length inputs in
  let cells, stats =
    Pool.map ~jobs n (fun i ->
        let a = inputs.(i) in
        let o = Program.run q a in
        (Policy.image policy a, o, Program.observe view o))
  in
  let tbl : (Value.t, Maximal.entry) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun (key, o, obs) ->
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key (Maximal.Serve (o, obs))
      | Some (Maximal.Serve (_, obs')) ->
          if not (Program.Obs.equal obs obs') then
            Hashtbl.replace tbl key Maximal.Mixed
      | Some Maximal.Mixed -> ())
    cells;
  (tbl, stats)

let build_maximal ?view ~jobs policy q space =
  let tbl, stats = maximal_table ?view ~jobs policy q space in
  (Maximal.of_table policy q tbl, stats)

let granted_classes ?view ~jobs policy q space =
  let tbl, stats = maximal_table ?view ~jobs policy q space in
  (Maximal.classes_of_table tbl, stats)

(* ------------------------------------------------------------------ *)
(* Refined drivers: partition first, then one pool task per class.     *)
(* ------------------------------------------------------------------ *)

type share = { cache : Cache.t; digest : string; tag : string }

(* Raw-Q runs cache losslessly as mechanism replies: Value/Diverged/Fault
   map onto Granted/Hung/Failed with the step count preserved, and Denied
   can never appear under a raw-Q key. The tag deliberately excludes the
   view — observables are projected from the cached outcome after the
   lookup, so [`Value] and [`Timed] analyses share every run. *)
let reply_of_outcome (o : Program.outcome) =
  match o.Program.result with
  | Program.Value v -> { Mechanism.response = Mechanism.Granted v; steps = o.Program.steps }
  | Program.Diverged -> { Mechanism.response = Mechanism.Hung; steps = o.Program.steps }
  | Program.Fault m -> { Mechanism.response = Mechanism.Failed m; steps = o.Program.steps }

let outcome_of_reply (r : Mechanism.reply) =
  match r.Mechanism.response with
  | Mechanism.Granted v -> { Program.result = Program.Value v; steps = r.Mechanism.steps }
  | Mechanism.Hung -> { Program.result = Program.Diverged; steps = r.Mechanism.steps }
  | Mechanism.Failed m -> { Program.result = Program.Fault m; steps = r.Mechanism.steps }
  | Mechanism.Denied _ ->
      invalid_arg "Exhaustive: Denied reply under a raw-Q cache key"

let runner ?share q =
  match share with
  | None -> Program.run q
  | Some s ->
      fun a ->
        let key =
          {
            Cache.digest = s.digest;
            tag = s.tag;
            projection = Value.tuple (Array.to_list a);
          }
        in
        outcome_of_reply
          (Cache.find_or_compute s.cache key (fun () ->
               reply_of_outcome (Program.run q a)))

let maximal_table_refined ?(view = `Value) ~jobs ?share policy q space =
  let pt = Refine.partition policy space in
  let k = Array.length pt.Refine.keys in
  let run = runner ?share q in
  let cells, pstats = Pool.map ~jobs k (Refine.refine_class ~view ~run pt) in
  let tbl : (Value.t, Maximal.entry) Hashtbl.t = Hashtbl.create 1024 in
  let runs = ref 0 in
  Array.iteri
    (fun c (entry, r) ->
      runs := !runs + r;
      Hashtbl.replace tbl pt.Refine.keys.(c) entry)
    cells;
  let rstats =
    {
      Refine.space_size = Array.length pt.Refine.points;
      class_count = k;
      runs = !runs;
      saved = Array.length pt.Refine.points - !runs;
    }
  in
  ((tbl, pt), rstats, pstats)

let build_maximal_refined ?view ~jobs ?share policy q space =
  let (tbl, _), rstats, pstats =
    maximal_table_refined ?view ~jobs ?share policy q space
  in
  (Maximal.of_table policy q tbl, rstats, pstats)

let granted_classes_refined ?view ~jobs ?share policy q space =
  let (tbl, _), rstats, pstats =
    maximal_table_refined ?view ~jobs ?share policy q space
  in
  (Maximal.classes_of_table tbl, rstats, pstats)

let grant_count_refined ?view ~jobs ?share policy q space =
  let (tbl, pt), rstats, pstats =
    maximal_table_refined ?view ~jobs ?share policy q space
  in
  (Refine.grant_count_of_table pt tbl, rstats, pstats)

let check_refined ?(config = Soundness.default) ~jobs policy m space =
  let pt = Refine.partition policy space in
  let k = Array.length pt.Refine.keys in
  let obs_of a =
    Soundness.canonicalize config
      (Mechanism.observe config.Soundness.view (Mechanism.respond m a))
  in
  (* Per class (independently, so classes parallelize): the first member
     whose observable splits from the representative's, if any. Members
     are ascending, so the candidate is the class's earliest mismatch;
     the globally-earliest candidate is exactly the witness the
     sequential scan reports. Singleton classes are never probed. *)
  let cells, pstats =
    Pool.map ~jobs k (fun c ->
        let ms = pt.Refine.members.(c) in
        let n = Array.length ms in
        if n < 2 then None
        else
          let obs0 = obs_of pt.Refine.points.(ms.(0)) in
          let rec scan i =
            if i >= n then None
            else
              let o = obs_of pt.Refine.points.(ms.(i)) in
              if Program.Obs.equal o obs0 then scan (i + 1)
              else Some (ms.(i), c, obs0, o)
          in
          scan 1)
  in
  let best =
    Array.fold_left
      (fun acc cand ->
        match (acc, cand) with
        | None, c -> c
        | Some (i, _, _, _), Some (j, _, _, _) when j < i -> cand
        | _ -> acc)
      None cells
  in
  let verdict =
    match best with
    | None -> Soundness.Sound
    | Some (i, c, obs_a, obs_b) ->
        Soundness.Unsound
          {
            Soundness.input_a = pt.Refine.points.(pt.Refine.members.(c).(0));
            input_b = pt.Refine.points.(i);
            obs_a;
            obs_b;
          }
  in
  (verdict, pstats)
