(** Sound verdict memoization.

    The soundness theorem (DESIGN §3) says a sound mechanism [M] factors
    through the policy filter: [M = M' ∘ I], so [M] is constant on every
    [I]-equivalence class. That makes caching verdicts under the key
    [(program digest, config tag, I(a))] {e semantically justified}: the
    cached reply {e is} [M'(I(a))], not a lossy approximation.

    Two caveats the implementation honours:

    - The cache serves the {e class representative's full reply}, step count
      included. For mechanisms sound at the [`Value] view only, raw step
      counts may vary within a class; replaying the representative's reply
      makes the memoized mechanism constant per class under {e both} views,
      and agree with the direct mechanism at the view it is sound for.
    - Memoizing an {b unsound} mechanism would fuse inputs the mechanism
      actually distinguishes — a wrong answer, not a slow one. Unsound and
      raw-[Q] runs must bypass the cache: use {!checked} when soundness is
      not already known, or plain {!exact} keys (full input vector — always
      sound, still deduplicates repeated inputs). *)

val mechanism :
  cache:Cache.t ->
  digest:string ->
  tag:string ->
  policy:Secpol_core.Policy.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Mechanism.t
(** [mechanism ~cache ~digest ~tag ~policy m] memoizes [m] on the
    [I]-projection [Policy.image policy a]. {b Caller asserts [m] is sound
    for [policy]}; use {!checked} otherwise. [tag] must fingerprint
    everything else the verdict depends on (mode, fuel, policy name, ...). *)

val exact :
  cache:Cache.t ->
  digest:string ->
  tag:string ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Mechanism.t
(** Memoize on the full input vector — sound for any mechanism (the key
    determines the input), useful to deduplicate repeated inputs across
    seeds. *)

val checked :
  ?config:Secpol_core.Soundness.config ->
  cache:Cache.t ->
  digest:string ->
  tag:string ->
  policy:Secpol_core.Policy.t ->
  space:Secpol_core.Space.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Mechanism.t * Secpol_core.Soundness.verdict
(** [checked] first decides soundness of [m] for [policy] over [space]
    (exhaustively — meant for the small corpus spaces). [Sound] yields the
    [I]-memoized mechanism; [Unsound _] returns [m] untouched — the bypass
    path. *)
