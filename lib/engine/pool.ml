type worker_stats = {
  worker : int;
  tasks : int;
  steals : int;
  idle_probes : int;
}

type stats = { jobs : int; task_count : int; workers : worker_stats list }

let total s =
  List.fold_left
    (fun (t, st, i) w -> (t + w.tasks, st + w.steals, i + w.idle_probes))
    (0, 0, 0) s.workers

let pp_stats ppf s =
  let tasks, steals, idle = total s in
  Format.fprintf ppf "%d domain(s), %d task(s), %d stolen, %d idle probe(s)"
    s.jobs tasks steals idle

let max_jobs = 64

(* One contiguous slice of the queue per worker. [next] is claimed with a
   fetch-and-add, so a slice can be drained concurrently by its owner and
   by thieves without ever running a task twice; over-claiming past [limit]
   is harmless. *)
type range = { next : int Atomic.t; limit : int }

let ranges_of n jobs =
  let base = n / jobs and extra = n mod jobs in
  let start = ref 0 in
  Array.init jobs (fun w ->
      let len = base + if w < extra then 1 else 0 in
      let lo = !start in
      start := lo + len;
      { next = Atomic.make lo; limit = lo + len })

(* A failing task wins the right to abort the map only if it has the lowest
   task index among failures — the deterministic choice. Other workers keep
   draining already-claimed tasks but stop claiming new ones. *)
type failure = { index : int; exn : exn; bt : Printexc.raw_backtrace }

(* One posted parallel section: the sliced queue, the task body, and a
   completion latch. Participant 0 is always the calling domain. *)
type job = {
  ranges : range array;
  width : int;
  body : int -> unit;
  failed : failure option Atomic.t;
  slots : worker_stats option array;
  pending : int Atomic.t;
  done_m : Mutex.t;
  done_c : Condition.t;
}

let participate job w =
  let tasks = ref 0 and steals = ref 0 and idle = ref 0 in
  let note_failure index exn bt =
    let rec go () =
      let cur = Atomic.get job.failed in
      let better = match cur with None -> true | Some f -> index < f.index in
      if better then
        if not (Atomic.compare_and_set job.failed cur (Some { index; exn; bt }))
        then go ()
    in
    go ()
  in
  let exec ~stolen i =
    incr tasks;
    if stolen then incr steals;
    match job.body i with
    | () -> ()
    | exception exn -> note_failure i exn (Printexc.get_raw_backtrace ())
  in
  let claim r =
    let i = Atomic.fetch_and_add r.next 1 in
    if i < r.limit then Some i else None
  in
  (* Own range first, then sweep the others until every range is dry.
     Claimed-but-running tasks belong to their claimants, so a worker
     may retire while others still run. *)
  let rec drain_own () =
    if Atomic.get job.failed = None then
      match claim job.ranges.(w) with
      | Some i ->
          exec ~stolen:false i;
          drain_own ()
      | None -> ()
  in
  let rec scavenge () =
    if Atomic.get job.failed = None then begin
      let found = ref false in
      for d = 1 to job.width - 1 do
        if not !found then
          let r = job.ranges.((w + d) mod job.width) in
          if Atomic.get r.next < r.limit then
            match claim r with
            | Some i ->
                found := true;
                exec ~stolen:true i
            | None -> ()
      done;
      if !found then scavenge () else incr idle
    end
  in
  drain_own ();
  scavenge ();
  job.slots.(w) <-
    Some { worker = w; tasks = !tasks; steals = !steals; idle_probes = !idle };
  if Atomic.fetch_and_add job.pending (-1) = 1 then begin
    Mutex.lock job.done_m;
    Condition.broadcast job.done_c;
    Mutex.unlock job.done_m
  end

(* The persistent pool: worker domains are spawned once, on demand, and
   parked on a condition variable between parallel sections — waking a
   parked domain costs microseconds where a Domain.spawn + join costs
   milliseconds of runtime ceremony, which used to dominate small maps.
   Parked worker [k] serves participant [k + 1] of whatever section is
   running (participant 0 is the caller); a global section lock serializes
   concurrent top-level sections, and a DLS flag makes nested sections from
   inside a task degrade to the sequential path instead of deadlocking on
   that lock. *)

type worker = {
  m : Mutex.t;
  c : Condition.t;
  mutable post : (job * int) option;
  mutable quit : bool;
}

let in_pool_worker = Domain.DLS.new_key (fun () -> false)

let pool_m = Mutex.create ()
let section_m = Mutex.create ()
let parked : worker list ref = ref []
let parked_count = ref 0
let domains : unit Domain.t list ref = ref []
let shutdown_registered = ref false

let worker_loop w =
  Domain.DLS.set in_pool_worker true;
  let rec loop () =
    Mutex.lock w.m;
    while w.post = None && not w.quit do
      Condition.wait w.c w.m
    done;
    let post = w.post in
    w.post <- None;
    let quit = w.quit in
    Mutex.unlock w.m;
    match post with
    | Some (job, slot) ->
        participate job slot;
        loop ()
    | None -> if not quit then loop ()
  in
  loop ()

let shutdown () =
  Mutex.lock pool_m;
  let ws = !parked and ds = !domains in
  parked := [];
  parked_count := 0;
  domains := [];
  Mutex.unlock pool_m;
  List.iter
    (fun w ->
      Mutex.lock w.m;
      w.quit <- true;
      Condition.signal w.c;
      Mutex.unlock w.m)
    ws;
  List.iter Domain.join ds

(* Grow the pool to [k] parked workers; returns the first [k], oldest
   first, so participant slots are stable across sections. *)
let ensure_workers k =
  Mutex.lock pool_m;
  if not !shutdown_registered then begin
    shutdown_registered := true;
    at_exit shutdown
  end;
  while !parked_count < k do
    let w =
      { m = Mutex.create (); c = Condition.create (); post = None; quit = false }
    in
    parked := !parked @ [ w ];
    incr parked_count;
    domains := Domain.spawn (fun () -> worker_loop w) :: !domains
  done;
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | w :: rest -> w :: take (n - 1) rest
  in
  let ws = take k !parked in
  Mutex.unlock pool_m;
  ws

let run ~jobs n f =
  let jobs = max 1 (min (min jobs max_jobs) (max 1 n)) in
  let jobs = if Domain.DLS.get in_pool_worker then 1 else jobs in
  if jobs = 1 then begin
    for i = 0 to n - 1 do
      f i
    done;
    {
      jobs = 1;
      task_count = n;
      workers = [ { worker = 0; tasks = n; steals = 0; idle_probes = 0 } ];
    }
  end
  else begin
    Mutex.lock section_m;
    (* The caller is participant 0 of the section it just opened: flag it
       like a pool worker so a nested map issued from one of its own tasks
       degrades to sequential instead of re-locking the section. *)
    Domain.DLS.set in_pool_worker true;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set in_pool_worker false;
        Mutex.unlock section_m)
      (fun () ->
        let job =
          {
            ranges = ranges_of n jobs;
            width = jobs;
            body = f;
            failed = Atomic.make None;
            slots = Array.make jobs None;
            pending = Atomic.make jobs;
            done_m = Mutex.create ();
            done_c = Condition.create ();
          }
        in
        let ws = ensure_workers (jobs - 1) in
        List.iteri
          (fun k w ->
            Mutex.lock w.m;
            w.post <- Some (job, k + 1);
            Condition.signal w.c;
            Mutex.unlock w.m)
          ws;
        participate job 0;
        Mutex.lock job.done_m;
        while Atomic.get job.pending > 0 do
          Condition.wait job.done_c job.done_m
        done;
        Mutex.unlock job.done_m;
        (match Atomic.get job.failed with
        | Some { exn; bt; _ } -> Printexc.raise_with_backtrace exn bt
        | None -> ());
        let workers =
          Array.to_list
            (Array.map
               (function
                 | Some s -> s
                 | None -> assert false (* every participant retired *))
               job.slots)
        in
        { jobs; task_count = n; workers })
  end

let map ~jobs n f =
  let results = Array.make n None in
  let stats = run ~jobs n (fun i -> results.(i) <- Some (f i)) in
  ( Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map: missing result")
      results,
    stats )
