type worker_stats = {
  worker : int;
  tasks : int;
  steals : int;
  idle_probes : int;
}

type stats = { jobs : int; task_count : int; workers : worker_stats list }

let total s =
  List.fold_left
    (fun (t, st, i) w -> (t + w.tasks, st + w.steals, i + w.idle_probes))
    (0, 0, 0) s.workers

let pp_stats ppf s =
  let tasks, steals, idle = total s in
  Format.fprintf ppf "%d domain(s), %d task(s), %d stolen, %d idle probe(s)"
    s.jobs tasks steals idle

let max_jobs = 64

(* One contiguous slice of the queue per worker. [next] is claimed with a
   fetch-and-add, so a slice can be drained concurrently by its owner and
   by thieves without ever running a task twice; over-claiming past [limit]
   is harmless. *)
type range = { next : int Atomic.t; limit : int }

let ranges_of n jobs =
  let base = n / jobs and extra = n mod jobs in
  let start = ref 0 in
  Array.init jobs (fun w ->
      let len = base + if w < extra then 1 else 0 in
      let lo = !start in
      start := lo + len;
      { next = Atomic.make lo; limit = lo + len })

(* A failing task wins the right to abort the map only if it has the lowest
   task index among failures — the deterministic choice. Other workers keep
   draining already-claimed tasks but stop claiming new ones. *)
type failure = { index : int; exn : exn; bt : Printexc.raw_backtrace }

let run ~jobs n f =
  let jobs = max 1 (min (min jobs max_jobs) (max 1 n)) in
  if jobs = 1 then begin
    for i = 0 to n - 1 do
      f i
    done;
    {
      jobs = 1;
      task_count = n;
      workers = [ { worker = 0; tasks = n; steals = 0; idle_probes = 0 } ];
    }
  end
  else begin
    let ranges = ranges_of n jobs in
    let failed : failure option Atomic.t = Atomic.make None in
    let note_failure index exn bt =
      let rec go () =
        let cur = Atomic.get failed in
        let better =
          match cur with None -> true | Some f -> index < f.index
        in
        if better then
          if not (Atomic.compare_and_set failed cur (Some { index; exn; bt }))
          then go ()
      in
      go ()
    in
    let worker w =
      let tasks = ref 0 and steals = ref 0 and idle = ref 0 in
      let exec ~stolen i =
        incr tasks;
        if stolen then incr steals;
        match f i with
        | () -> ()
        | exception exn ->
            note_failure i exn (Printexc.get_raw_backtrace ())
      in
      let claim r =
        let i = Atomic.fetch_and_add r.next 1 in
        if i < r.limit then Some i else None
      in
      (* Own range first, then sweep the others until every range is dry.
         Claimed-but-running tasks belong to their claimants, so a worker
         may retire while others still run. *)
      let rec drain_own () =
        if Atomic.get failed = None then
          match claim ranges.(w) with
          | Some i ->
              exec ~stolen:false i;
              drain_own ()
          | None -> ()
      in
      let rec scavenge () =
        if Atomic.get failed = None then begin
          let found = ref false in
          for d = 1 to jobs - 1 do
            if not !found then
              let r = ranges.((w + d) mod jobs) in
              if Atomic.get r.next < r.limit then
                match claim r with
                | Some i ->
                    found := true;
                    exec ~stolen:true i
                | None -> ()
          done;
          if !found then scavenge () else incr idle
        end
      in
      drain_own ();
      scavenge ();
      { worker = w; tasks = !tasks; steals = !steals; idle_probes = !idle }
    in
    let spawned =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    let own = worker 0 in
    let others = Array.to_list (Array.map Domain.join spawned) in
    (match Atomic.get failed with
    | Some { exn; bt; _ } -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    { jobs; task_count = n; workers = own :: others }
  end

let map ~jobs n f =
  let results = Array.make n None in
  let stats = run ~jobs n (fun i -> results.(i) <- Some (f i)) in
  ( Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map: missing result")
      results,
    stats )
