(** A domain-safe verdict cache with compute-once semantics and an
    optional LRU bound.

    Keys are [(digest, tag, projection)]: the MD5 digest of the program,
    a caller-built configuration fingerprint (mode, fuel, policy, ...),
    and the projection of the input the verdict may legally depend on —
    the whole input vector for exact caching, or the policy image [I(a)]
    for sound-mechanism memoization (see {!Memo}).

    {b Compute-once}: the first requester of a key computes the verdict;
    concurrent requesters of the same key block until it lands and then
    share it. This is what makes the hit/miss counters deterministic:
    misses always equal the number of distinct keys requested and hits the
    remaining lookups, independent of how domains are scheduled — so the
    counters can appear in reports that promise byte-identical output
    across [--jobs].

    {b Bounding}: with [~capacity] the cache holds at most that many
    settled verdicts and evicts the least recently used one on overflow
    (an in-flight computation is never evicted). Eviction only forgets —
    a later request recomputes and re-inserts — so a bounded cache stays
    sound; callers fed attacker-chosen keys (the per-session verdict
    cache of [Server.Session]) must bound, while exhaustive drivers over
    a finite space ({!Memo}, the certifier) may stay unbounded. *)

type t

type key = {
  digest : string;  (** MD5 of the program ({!Secpol_journal.Runner.graph_hash}) *)
  tag : string;  (** configuration fingerprint; same tag, same mechanism *)
  projection : Secpol_core.Value.t;
      (** what the cached verdict is a function of *)
}

val create : ?capacity:int -> unit -> t
(** [create ()] is unbounded; [create ~capacity ()] keeps at most
    [capacity] settled verdicts, LRU-evicted.
    @raise Invalid_argument if [capacity < 1]. *)

val find_or_compute :
  t -> key -> (unit -> Secpol_core.Mechanism.reply) -> Secpol_core.Mechanism.reply
(** [find_or_compute c k f] returns the cached reply for [k], computing it
    with [f] (outside the cache lock) on first request. If [f] raises, the
    key is released, every waiter is woken, and the exception propagates —
    the next requester retries the computation. *)

val find : t -> key -> Secpol_core.Mechanism.reply option
(** Non-blocking lookup. Counts a hit or a miss; never waits on a
    pending computation (a pending key reads as a miss). Lets callers
    that must not cache every reply — e.g. a session cache that skips
    transient [Hung]/[Failed] verdicts — pair it with {!store}. *)

val store : t -> key -> Secpol_core.Mechanism.reply -> unit
(** Insert if absent; a resident or pending verdict is never
    overwritten. *)

val hits : t -> int

val misses : t -> int
(** Completed first-computations plus {!find} lookups that missed. *)

val evictions : t -> int
(** Verdicts dropped by the LRU bound; always [0] when unbounded. *)

val size : t -> int
