(** A persistent pool of domains draining an indexed work queue.

    [map ~jobs n f] evaluates [f 0 .. f (n-1)] on [jobs] domains and
    returns the results in index order. The queue is split into one
    contiguous range per worker; a worker that drains its own range steals
    from the tail of the other ranges, so an unbalanced task list still
    keeps every domain busy. Each result lands in its own slot, so the
    returned array — and anything merged from it in index order — is
    {b independent of scheduling}: the same bytes whatever [jobs] is.

    Worker domains are spawned once, on demand, and parked between calls:
    waking a parked domain costs microseconds where the historical
    spawn-per-call design paid milliseconds of [Domain.spawn]/[join]
    ceremony — enough to make [jobs = 4] {e slower} than [jobs = 1] on
    small task sets (the bench inversion this rework removes). The calling
    domain always participates as worker 0, so [jobs = j] still means [j]
    domains computing. Concurrent top-level sections serialize on an
    internal lock; a nested [map]/[run] issued from {e inside} a pool task
    runs sequentially on its worker instead of deadlocking on that lock,
    so composed parallel layers degrade gracefully. The pool is torn down
    by an [at_exit] hook.

    [jobs = 1] runs on the calling domain with no pool at all, so the
    sequential path is exactly the historical code path.

    Tasks must not share mutable state: anything a task mutates must be
    task-local (per-task {!Secpol_trace.Metrics} shards, per-task media)
    or explicitly domain-safe ({!Cache}). A task that raises aborts the
    whole map: remaining tasks are abandoned, the section completes, and
    the exception of the lowest-indexed failing task is re-raised — a
    deterministic choice, whatever domain saw its exception first. *)

type worker_stats = {
  worker : int;
  tasks : int;  (** tasks this worker executed *)
  steals : int;  (** tasks taken from another worker's range *)
  idle_probes : int;  (** empty range probes before the worker retired *)
}

type stats = {
  jobs : int;  (** domains the pool actually used *)
  task_count : int;
  workers : worker_stats list;  (** one per worker, in worker order *)
}

val total : stats -> int * int * int
(** Summed [(tasks, steals, idle_probes)] over the workers. [tasks] always
    equals [task_count]; steals and idle probes are scheduling noise and
    vary from run to run — report them as telemetry, never in output that
    promises determinism. *)

val pp_stats : Format.formatter -> stats -> unit

val max_jobs : int
(** Upper bound on [jobs] (clamped, currently 64). *)

val map : jobs:int -> int -> (int -> 'a) -> 'a array * stats
(** [map ~jobs n f] is [[| f 0; ...; f (n-1) |]] computed on [max 1
    (min jobs max_jobs)] domains (never more than [n]). *)

val run : jobs:int -> int -> (int -> unit) -> stats
(** [map] for effect-only tasks. *)
