(** Parallel drivers for the exhaustive core checks.

    Both checks decompose the same way: the expensive part — running the
    mechanism or program on every point of the space — is evaluated by the
    {!Pool} into an array indexed by the space's lexicographic enumeration
    order; the cheap partition scan over that array is then the {e verbatim}
    sequential algorithm. Verdicts, witnesses and class tables are therefore
    bit-for-bit those of {!Secpol_core.Soundness.check} and
    {!Secpol_core.Maximal.build}, whatever [jobs] is. *)

val check :
  ?config:Secpol_core.Soundness.config ->
  jobs:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Space.t ->
  Secpol_core.Soundness.verdict * Pool.stats
(** Parallel [Soundness.check]: same verdict, same witness. *)

val maximal_table :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  (Secpol_core.Value.t, Secpol_core.Maximal.entry) Hashtbl.t * Pool.stats

val build_maximal :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  Secpol_core.Mechanism.t * Pool.stats
(** Parallel [Maximal.build]: same class table, same mechanism. *)

val granted_classes :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  (int * int) * Pool.stats
