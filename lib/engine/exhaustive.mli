(** Parallel drivers for the exhaustive core checks.

    Both checks decompose the same way: the expensive part — running the
    mechanism or program on every point of the space — is evaluated by the
    {!Pool} into an array indexed by the space's lexicographic enumeration
    order; the cheap partition scan over that array is then the {e verbatim}
    sequential algorithm. Verdicts, witnesses and class tables are therefore
    bit-for-bit those of {!Secpol_core.Soundness.check} and
    {!Secpol_core.Maximal.build}, whatever [jobs] is. *)

val check :
  ?config:Secpol_core.Soundness.config ->
  jobs:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Space.t ->
  Secpol_core.Soundness.verdict * Pool.stats
(** Parallel [Soundness.check]: same verdict, same witness. *)

val maximal_table :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  (Secpol_core.Value.t, Secpol_core.Maximal.entry) Hashtbl.t * Pool.stats

val build_maximal :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  Secpol_core.Mechanism.t * Pool.stats
(** Parallel [Maximal.build]: same class table, same mechanism. *)

val granted_classes :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  (int * int) * Pool.stats

(** {1 Refined drivers}

    The refined drivers partition the space by policy image first
    ({!Secpol_core.Refine.partition}) and hand the pool {e one task per
    class}; each task refines its class with
    {!Secpol_core.Refine.refine_class} — run the representative, then
    members until the first split. Results are merged in class-creation
    order, so tables, verdicts and witnesses are bit-identical to the
    sequential refined path (and to the brute oracle) at any [jobs]. *)

type share = { cache : Cache.t; digest : string; tag : string }
(** Share raw-Q runs across analyses through an exact-key {!Cache}: the
    projection is the whole input vector, and outcomes round-trip
    losslessly as replies (Value/Diverged/Fault ↔ Granted/Hung/Failed,
    steps preserved). The [tag] must identify the program configuration
    but {b not} the view — observables are projected after the lookup, so
    [`Value] and [`Timed] analyses of the same program share every run. *)

val maximal_table_refined :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  ?share:share ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  ((Secpol_core.Value.t, Secpol_core.Maximal.entry) Hashtbl.t
  * Secpol_core.Refine.partition)
  * Secpol_core.Refine.stats
  * Pool.stats
(** Refined [maximal_table]: same keys, same entries, fewer runs. Also
    returns the partition so callers can read grant counts off the table
    ({!Secpol_core.Refine.grant_count_of_table}) without re-partitioning. *)

val build_maximal_refined :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  ?share:share ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  Secpol_core.Mechanism.t * Secpol_core.Refine.stats * Pool.stats

val granted_classes_refined :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  ?share:share ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  (int * int) * Secpol_core.Refine.stats * Pool.stats

val grant_count_refined :
  ?view:Secpol_core.Program.view ->
  jobs:int ->
  ?share:share ->
  Secpol_core.Policy.t ->
  Secpol_core.Program.t ->
  Secpol_core.Space.t ->
  (int * int) * Secpol_core.Refine.stats * Pool.stats
(** [(granted, total)] points of the maximal mechanism, read off the
    refined class table — equals [Completeness.grant_count] of the built
    mechanism without ever running it. *)

val check_refined :
  ?config:Secpol_core.Soundness.config ->
  jobs:int ->
  Secpol_core.Policy.t ->
  Secpol_core.Mechanism.t ->
  Secpol_core.Space.t ->
  Secpol_core.Soundness.verdict * Pool.stats
(** Refined [Soundness.check]: singleton classes are never probed and each
    class stops at its first split. Same verdict, same witness. *)
