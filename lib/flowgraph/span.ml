type t = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

let make ~start_line ~start_col ~end_line ~end_col =
  { start_line; start_col; end_line; end_col }

let point ~line ~col =
  { start_line = line; start_col = col; end_line = line; end_col = col }

let join a b =
  let before (l1, c1) (l2, c2) = l1 < l2 || (l1 = l2 && c1 <= c2) in
  let s1 = (a.start_line, a.start_col) and s2 = (b.start_line, b.start_col) in
  let e1 = (a.end_line, a.end_col) and e2 = (b.end_line, b.end_col) in
  let start_line, start_col = if before s1 s2 then s1 else s2 in
  let end_line, end_col = if before e1 e2 then e2 else e1 in
  { start_line; start_col; end_line; end_col }

let line s = s.start_line

let compare (a : t) (b : t) = Stdlib.compare a b

let equal a b = compare a b = 0

let pp ppf s =
  if s.start_line = s.end_line then
    Format.fprintf ppf "%d:%d-%d" s.start_line s.start_col s.end_col
  else
    Format.fprintf ppf "%d:%d-%d:%d" s.start_line s.start_col s.end_line
      s.end_col

let to_string s = Format.asprintf "%a" pp s
