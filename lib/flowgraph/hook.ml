type action = Crash of string | Corrupt | Starve

type t = step:int -> action option

let none : t = fun ~step:_ -> None
