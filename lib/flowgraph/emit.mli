(** Trace-emission hooks for the interpreters.

    The surveillance machinery computes, at every box, exactly why
    information flows where it does — and then historically threw that
    record away, reporting only the final verdict. An emitter is the
    observation channel that keeps it: the interpreters call it once per
    committed box with what the box did (step count, node, assignment,
    surveillance update, control-context growth, condemnation).

    Like {!Hook}, the {e type} lives here so the interpreters stay free of
    any dependency on the trace library ([Secpol_trace] supplies the
    sinks). Unlike [Hook], an emitter is pure observation with a hard
    bit-identity contract: {!none} is a single pattern match per call site
    — no closure invocation, no allocation — so an un-traced run and a run
    with [none] are bit-identical and indistinguishable on the hot path
    (the null-sink benches gate this at ≤2% overhead). *)

module Iset = Secpol_core.Iset

(** The receiving end. All arguments are immediate values the emitting
    interpreter has already computed — building an emitter must never force
    extra work on the emitting side. [step] is the fuel consumed {e before}
    the box executes and [node] the box's index in the executing graph;
    spans are not passed (a sink that wants source positions looks them up
    from the graph it was built over). *)
type callbacks = {
  box : step:int -> node:int -> unit;
      (** A box committed: one call per executed assignment, decision or
          halt box, in execution order. *)
  assign : step:int -> node:int -> var:Var.t -> value:int -> unit;
      (** An assignment box committed [var := value]. Emitted by the plain
          interpreter; the instrumented-flowchart adapter inverts the
          register layout to turn assignments to surveillance registers
          back into [taint]/[pc] calls. *)
  taint : step:int -> node:int -> var:Var.t -> taint:Iset.t -> srcs:Var.Set.t -> unit;
      (** A surveillance variable changed: [var]'s taint became [taint]
          because the box read [srcs] (plus, implicitly, the current
          program-counter taint). *)
  pc : step:int -> node:int -> pc:Iset.t -> srcs:Var.Set.t -> unit;
      (** The program-counter taint [C̄] changed — it grew at a decision on
          [srcs], or was restored at a postdominator ([srcs] empty). *)
  condemn :
    step:int -> node:int -> at_decision:bool -> taint:Iset.t -> srcs:Var.Set.t -> notice:string -> unit;
      (** The run was condemned at this box: the surveillance value [taint]
          escaped the allowed set. [at_decision] distinguishes the timed
          mechanism's abort-before-the-test from a halt-box denial; [srcs]
          are the variables whose taint was checked ([{y}] at a halt). *)
}

type t = Null | Sink of callbacks

val none : t
(** Emits nothing; statically free. *)

val box : t -> step:int -> node:int -> unit
val assign : t -> step:int -> node:int -> var:Var.t -> value:int -> unit
val taint : t -> step:int -> node:int -> var:Var.t -> taint:Iset.t -> srcs:Var.Set.t -> unit
val pc : t -> step:int -> node:int -> pc:Iset.t -> srcs:Var.Set.t -> unit

val condemn :
  t -> step:int -> node:int -> at_decision:bool -> taint:Iset.t -> srcs:Var.Set.t -> notice:string -> unit
