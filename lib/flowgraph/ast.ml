type t =
  | Skip
  | Assign of Var.t * Expr.t
  | Seq of t list
  | If of Expr.pred * t * t
  | While of Expr.pred * t
  | At of Span.t * t

type prog = { name : string; arity : int; body : t }

let at span s = At (span, s)

let rec strip_spans = function
  | Skip -> Skip
  | Assign _ as s -> s
  | Seq l -> Seq (List.map strip_spans l)
  | If (p, a, b) -> If (p, strip_spans a, strip_spans b)
  | While (p, body) -> While (p, strip_spans body)
  | At (_, s) -> strip_spans s

let strip_spans_prog p = { p with body = strip_spans p.body }

let span_of = function At (sp, _) -> Some sp | _ -> None

let rec assigned_vars = function
  | Skip -> Var.Set.empty
  | Assign (v, _) -> Var.Set.singleton v
  | Seq l -> List.fold_left (fun s st -> Var.Set.union s (assigned_vars st)) Var.Set.empty l
  | If (_, a, b) -> Var.Set.union (assigned_vars a) (assigned_vars b)
  | While (_, body) -> assigned_vars body
  | At (_, s) -> assigned_vars s

let rec read_vars = function
  | Skip -> Var.Set.empty
  | Assign (_, e) -> Expr.vars e
  | Seq l -> List.fold_left (fun s st -> Var.Set.union s (read_vars st)) Var.Set.empty l
  | If (p, a, b) ->
      Var.Set.union (Expr.pred_vars p) (Var.Set.union (read_vars a) (read_vars b))
  | While (p, body) -> Var.Set.union (Expr.pred_vars p) (read_vars body)
  | At (_, s) -> read_vars s

let validate p =
  let vs = Var.Set.union (assigned_vars p.body) (read_vars p.body) in
  let out_of_range = function
    | Var.Input i -> i >= p.arity || i < 0
    | Var.Reg _ | Var.Out -> false
  in
  let bad = List.find_opt out_of_range (Var.Set.elements vs) in
  match bad with
  | Some v ->
      Error
        (Printf.sprintf "program %s (arity %d) uses out-of-range input %s"
           p.name p.arity (Var.to_string v))
  | None -> Ok ()

let prog ~name ~arity body =
  let p = { name; arity; body } in
  match validate p with Ok () -> p | Error m -> invalid_arg ("Ast.prog: " ^ m)

let max_reg p =
  Var.Set.fold
    (fun v acc -> match v with Var.Reg i -> max i acc | Var.Input _ | Var.Out -> acc)
    (Var.Set.union (assigned_vars p.body) (read_vars p.body))
    (-1)

let seq l =
  let rec flatten = function
    | [] -> []
    | Skip :: rest | At (_, Skip) :: rest -> flatten rest
    | Seq inner :: rest -> flatten (inner @ rest)
    | st :: rest -> st :: flatten rest
  in
  match flatten l with [] -> Skip | [ st ] -> st | sts -> Seq sts

let rec map_exprs ~expr ~pred = function
  | Skip -> Skip
  | Assign (v, e) -> Assign (v, expr e)
  | Seq l -> Seq (List.map (map_exprs ~expr ~pred) l)
  | If (p, a, b) -> If (pred p, map_exprs ~expr ~pred a, map_exprs ~expr ~pred b)
  | While (p, body) -> While (pred p, map_exprs ~expr ~pred body)
  | At (sp, s) -> At (sp, map_exprs ~expr ~pred s)

let simplify_exprs p =
  {
    p with
    body = map_exprs ~expr:Expr.simplify ~pred:Expr.simplify_pred p.body;
  }

(* Drop branches a constant test can never take. Tests are simplified
   first, so [prune_dead_branches (simplify_exprs p)] eliminates exactly the
   code constant folding proves dead. [While (True, _)] is kept: it is not
   dead, it diverges. *)
let rec prune_dead = function
  | (Skip | Assign _) as s -> s
  | Seq l -> seq (List.map prune_dead l)
  | If (p, a, b) -> (
      match Expr.simplify_pred p with
      | Expr.True -> prune_dead a
      | Expr.False -> prune_dead b
      | p' -> If (p', prune_dead a, prune_dead b))
  | While (p, body) -> (
      match Expr.simplify_pred p with
      | Expr.False -> Skip
      | p' -> While (p', prune_dead body))
  | At (sp, s) -> (
      match prune_dead s with Skip -> Skip | s' -> At (sp, s'))

let prune_dead_branches p = { p with body = prune_dead p.body }

let rec size = function
  | Skip -> 1
  | Assign _ -> 1
  | Seq l -> List.fold_left (fun n st -> n + size st) 1 l
  | If (_, a, b) -> 1 + size a + size b
  | While (_, body) -> 1 + size body
  | At (_, s) -> size s

let rec loop_free = function
  | Skip | Assign _ -> true
  | Seq l -> List.for_all loop_free l
  | If (_, a, b) -> loop_free a && loop_free b
  | While _ -> false
  | At (_, s) -> loop_free s

let rec pp ppf = function
  | Skip -> Format.pp_print_string ppf "skip"
  | Assign (v, e) -> Format.fprintf ppf "@[<h>%a := %a@]" Var.pp v Expr.pp e
  | Seq l ->
      Format.fprintf ppf "@[<v>%a@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        l
  | If (p, a, (Skip | At (_, Skip))) ->
      Format.fprintf ppf "@[<v 2>if %a then@ %a@]@,end" Expr.pp_pred p pp a
  | If (p, a, b) ->
      Format.fprintf ppf "@[<v>@[<v 2>if %a then@ %a@]@,@[<v 2>else@ %a@]@,end@]"
        Expr.pp_pred p pp a pp b
  | While (p, body) ->
      Format.fprintf ppf "@[<v 2>while %a do@ %a@]@,done" Expr.pp_pred p pp body
  | At (_, s) -> pp ppf s

let pp_prog ppf p =
  Format.fprintf ppf "@[<v 2>program %s(x0..x%d):@ %a@]" p.name (p.arity - 1) pp
    p.body

let to_string st = Format.asprintf "%a" pp st
