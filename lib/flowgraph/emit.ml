module Iset = Secpol_core.Iset

type callbacks = {
  box : step:int -> node:int -> unit;
  assign : step:int -> node:int -> var:Var.t -> value:int -> unit;
  taint : step:int -> node:int -> var:Var.t -> taint:Iset.t -> srcs:Var.Set.t -> unit;
  pc : step:int -> node:int -> pc:Iset.t -> srcs:Var.Set.t -> unit;
  condemn :
    step:int -> node:int -> at_decision:bool -> taint:Iset.t -> srcs:Var.Set.t -> notice:string -> unit;
}

type t = Null | Sink of callbacks

let none = Null

let box t ~step ~node =
  match t with Null -> () | Sink c -> c.box ~step ~node

let assign t ~step ~node ~var ~value =
  match t with Null -> () | Sink c -> c.assign ~step ~node ~var ~value

let taint t ~step ~node ~var ~taint:l ~srcs =
  match t with Null -> () | Sink c -> c.taint ~step ~node ~var ~taint:l ~srcs

let pc t ~step ~node ~pc:l ~srcs =
  match t with Null -> () | Sink c -> c.pc ~step ~node ~pc:l ~srcs

let condemn t ~step ~node ~at_decision ~taint:l ~srcs ~notice =
  match t with
  | Null -> ()
  | Sink c -> c.condemn ~step ~node ~at_decision ~taint:l ~srcs ~notice
