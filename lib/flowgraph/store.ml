module Value = Secpol_core.Value

type t = {
  inputs : int array;
  mutable regs : int array;  (* grown on demand *)
  mutable out : int;
}

let create ~inputs ~max_reg =
  { inputs = Array.copy inputs; regs = Array.make (max 1 (max_reg + 1)) 0; out = 0 }

let of_values ~inputs ~max_reg =
  create ~inputs:(Array.map Value.to_int inputs) ~max_reg

let ensure st i =
  if i >= Array.length st.regs then begin
    let bigger = Array.make (max (i + 1) (2 * Array.length st.regs)) 0 in
    Array.blit st.regs 0 bigger 0 (Array.length st.regs);
    st.regs <- bigger
  end

(* A program may name an input variable beyond its own arity (nothing in
   the AST prevents it); that must surface as a typed runtime fault the
   interpreters catch, never as an array bounds crash. *)
let checked_input st i =
  if i < 0 || i >= Array.length st.inputs then
    raise (Expr.Runtime_fault (Expr.Unbound_input i))

let get st = function
  | Var.Input i ->
      checked_input st i;
      st.inputs.(i)
  | Var.Reg i ->
      ensure st i;
      st.regs.(i)
  | Var.Out -> st.out

let set st v n =
  match v with
  | Var.Input i ->
      checked_input st i;
      st.inputs.(i) <- n
  | Var.Reg i ->
      ensure st i;
      st.regs.(i) <- n
  | Var.Out -> st.out <- n

let lookup st v = get st v
let output st = st.out

type snapshot = {
  snap_inputs : int array;
  snap_regs : int array;
  snap_out : int;
}

let snapshot st =
  {
    snap_inputs = Array.copy st.inputs;
    snap_regs = Array.copy st.regs;
    snap_out = st.out;
  }

let restore s =
  if Array.length s.snap_regs = 0 then
    invalid_arg "Store.restore: empty register array";
  {
    inputs = Array.copy s.snap_inputs;
    regs = Array.copy s.snap_regs;
    out = s.snap_out;
  }
