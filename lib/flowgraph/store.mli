(** Mutable variable stores for the interpreters.

    A store holds the integer value of every flowchart variable. Inputs are
    initialized from the input vector, registers and the output variable
    from 0 — exactly the paper's initialization convention. *)

type t

val create : inputs:int array -> max_reg:int -> t

val of_values : inputs:Secpol_core.Value.t array -> max_reg:int -> t
(** Converts each input with [Value.to_int].
    @raise Invalid_argument on a non-integer input (flowchart domains are
    the integers). *)

val get : t -> Var.t -> int
(** @raise Expr.Runtime_fault ([Unbound_input]) when an input variable's
    index lies outside the store's arity — a typed fault the interpreters
    catch, rather than an array bounds crash. *)

val set : t -> Var.t -> int -> unit
(** Same out-of-range discipline as {!get}. *)

val lookup : t -> Var.t -> int
(** Same as {!get}; shaped for use as an {!Expr.eval} environment. *)

val output : t -> int
(** Current value of [y]. *)

(** An immutable copy of a store's full contents, the value-store half of a
    snapshotable interpreter state. [snapshot] copies the arrays out;
    [restore] builds a fresh store around copies of them, preserving the
    exact register-array length (grow-on-demand sizing is part of the state:
    deterministic replay must reproduce it bit-for-bit). *)
type snapshot = {
  snap_inputs : int array;
  snap_regs : int array;
  snap_out : int;
}

val snapshot : t -> snapshot

val restore : snapshot -> t
(** @raise Invalid_argument on an empty register array (stores always hold
    at least one register slot). *)
