(** Mutable variable stores for the interpreters.

    A store holds the integer value of every flowchart variable. Inputs are
    initialized from the input vector, registers and the output variable
    from 0 — exactly the paper's initialization convention. *)

type t

val create : inputs:int array -> max_reg:int -> t

val of_values : inputs:Secpol_core.Value.t array -> max_reg:int -> t
(** Converts each input with [Value.to_int].
    @raise Invalid_argument on a non-integer input (flowchart domains are
    the integers). *)

val get : t -> Var.t -> int
(** @raise Expr.Runtime_fault ([Unbound_input]) when an input variable's
    index lies outside the store's arity — a typed fault the interpreters
    catch, rather than an array bounds crash. *)

val set : t -> Var.t -> int -> unit
(** Same out-of-range discipline as {!get}. *)

val lookup : t -> Var.t -> int
(** Same as {!get}; shaped for use as an {!Expr.eval} environment. *)

val output : t -> int
(** Current value of [y]. *)
