(** Fault-injection hooks for the interpreters.

    A protection mechanism, per the paper's definition, returns on every
    input either [Q]'s output or a violation notice — there is no third
    "the monitor crashed" outcome. The executable monitors in this
    reproduction are real programs, so they {e can} crash, hang, or have
    their state corrupted; the fail-secure runtime ({!Secpol_fault.Guard})
    exists to collapse every such failure back into the notice set [F].

    To test that collapse, both interpreters accept a hook consulted once
    per executed box with the current step count. The hook decides whether
    a fault strikes at that step and, if so, which kind. Hooks are pure
    observation points: [None] means the step proceeds untouched, and the
    default hook {!none} never fires, so an un-hooked run and a run with
    {!none} are bit-identical.

    The deterministic seeded implementation lives in
    [Secpol_fault.Injector]; keeping the {e type} here lets the
    interpreters stay free of any dependency on the fault library. *)

(** What strikes the interpreter at the chosen step. *)
type action =
  | Crash of string
      (** The monitor process dies with an internal error. The interpreter
          reports a fault outcome ([Program.Fault] / [Mechanism.Failed])
          tagged with the message — it never lets an exception escape. *)
  | Corrupt
      (** Monitor state is silently damaged. The taint interpreter flips a
          bit of one surveillance variable in its primary store; its
          redundant shadow copy detects the discrepancy before the state is
          next read and aborts with a fault. The plain interpreter has no
          redundant state, so it reports the corruption as a detected
          fault directly. *)
  | Starve
      (** The step budget collapses: the run behaves as if fuel were
          exhausted at this step (divergence for the plain interpreter, a
          fuel-watchdog violation notice for the monitors). *)

type t = step:int -> action option
(** [hook ~step] is consulted before each assignment, decision, or halt
    box executes, with the number of steps consumed so far. *)

val none : t
(** Never fires. *)
