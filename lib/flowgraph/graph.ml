type node =
  | Start of int
  | Assign of Var.t * Expr.t * int
  | Decision of Expr.pred * int * int
  | Halt
  | Halt_violation of string

type t = {
  name : string;
  arity : int;
  nodes : node array;
  entry : int;
  spans : Span.t option array;
}

let successors g n =
  match g.nodes.(n) with
  | Start s -> [ s ]
  | Assign (_, _, s) -> [ s ]
  | Decision (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Halt | Halt_violation _ -> []

let node_count g = Array.length g.nodes

let span g n = g.spans.(n)

let halt_nodes g =
  let acc = ref [] in
  Array.iteri
    (fun i n -> match n with Halt | Halt_violation _ -> acc := i :: !acc | _ -> ())
    g.nodes;
  List.rev !acc

let node_vars = function
  | Start _ | Halt | Halt_violation _ -> Var.Set.empty
  | Assign (v, e, _) -> Var.Set.add v (Expr.vars e)
  | Decision (p, _, _) -> Expr.pred_vars p

let validate g =
  let n = Array.length g.nodes in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if g.entry < 0 || g.entry >= n then err "entry %d out of range" g.entry
  else if Array.length g.spans <> n then
    err "span table length %d does not match %d nodes" (Array.length g.spans) n
  else
    match g.nodes.(g.entry) with
    | Assign _ | Decision _ | Halt | Halt_violation _ ->
        err "entry node %d is not a start box" g.entry
    | Start _ ->
        let problem = ref None in
        Array.iteri
          (fun i node ->
            let check_edge s =
              if s < 0 || s >= n then
                problem := Some (Printf.sprintf "node %d: edge to %d out of range" i s)
              else if s = g.entry then
                problem := Some (Printf.sprintf "node %d: edge back into the start box" i)
            in
            (match node with
            | Start s when i <> g.entry ->
                problem := Some (Printf.sprintf "extra start box at node %d" i);
                check_edge s
            | Start s -> check_edge s
            | Assign (_, _, s) -> check_edge s
            | Decision (_, a, b) ->
                check_edge a;
                check_edge b
            | Halt | Halt_violation _ -> ());
            Var.Set.iter
              (function
                | Var.Input j when j < 0 || j >= g.arity ->
                    problem :=
                      Some
                        (Printf.sprintf "node %d: input x%d out of range (arity %d)" i
                           j g.arity)
                | Var.Input _ | Var.Reg _ | Var.Out -> ())
              (node_vars node))
          g.nodes;
        (match !problem with Some m -> Error m | None -> Ok ())

let make ?spans ~name ~arity ~entry nodes =
  let spans =
    match spans with
    | Some s -> s
    | None -> Array.make (Array.length nodes) None
  in
  let g = { name; arity; nodes; entry; spans } in
  match validate g with Ok () -> g | Error m -> invalid_arg ("Graph.make: " ^ m)

let reachable g =
  let seen = Array.make (node_count g) false in
  let rec visit n =
    if not seen.(n) then begin
      seen.(n) <- true;
      List.iter visit (successors g n)
    end
  in
  visit g.entry;
  seen

let max_reg g =
  Array.fold_left
    (fun acc node ->
      Var.Set.fold
        (fun v acc -> match v with Var.Reg i -> max i acc | _ -> acc)
        (node_vars node) acc)
    (-1) g.nodes

let map_nodes f g =
  let g' = { g with nodes = Array.mapi f g.nodes } in
  match validate g' with
  | Ok () -> g'
  | Error m -> invalid_arg ("Graph.map_nodes: " ^ m)

let pp_node ppf = function
  | Start s -> Format.fprintf ppf "start -> %d" s
  | Assign (v, e, s) -> Format.fprintf ppf "%a := %a -> %d" Var.pp v Expr.pp e s
  | Decision (p, a, b) ->
      Format.fprintf ppf "if %a -> %d | %d" Expr.pp_pred p a b
  | Halt -> Format.pp_print_string ppf "halt"
  | Halt_violation notice -> Format.fprintf ppf "halt-violation %s" notice

let pp ppf g =
  Format.fprintf ppf "@[<v>flowchart %s (arity %d, entry %d):@ " g.name g.arity
    g.entry;
  Array.iteri (fun i n -> Format.fprintf ppf "%3d: %a@ " i pp_node n) g.nodes;
  Format.fprintf ppf "@]"
