(** Interpreters, with the step-count cost model.

    The cost model implements the observability postulate's notion of
    running time: one step per assignment box and one per decision box
    executed (start and halt boxes are free). The graph validator guarantees
    every cycle contains a step-consuming box, so the fuel bound makes every
    run terminate; fuel exhaustion is reported as divergence.

    Both interpreters — over flowchart graphs and directly over structured
    ASTs — use the same cost model, and the compiler introduces no extra
    boxes, so the two agree on (value, steps) pointwise.

    Both accept a fault-injection {!Hook.t} (default {!Hook.none}, which
    leaves runs bit-identical to un-hooked ones) and are {e total}: every
    failure — arity mismatch, division by zero, an out-of-range input
    variable, an injected crash — is returned as a [Fault] outcome, never
    raised. No input can crash a caller.

    The graph interpreter additionally accepts a trace emitter {!Emit.t}
    (default {!Emit.none}, same bit-identity contract as the hook): one
    [box] call per committed box plus an [assign] call per assignment,
    emitted only for boxes that actually commit (a box pre-empted by an
    injected fault or fuel exhaustion is not reported). *)

val default_fuel : int
(** 100_000 steps. *)

val run_graph :
  ?fuel:int ->
  ?cost:Expr.cost_model ->
  ?hook:Hook.t ->
  ?emit:Emit.t ->
  Graph.t ->
  Secpol_core.Value.t array ->
  Secpol_core.Program.outcome
(** Execute a flowchart. A [Halt_violation] box produces a
    [Fault] outcome tagged ["violation:<notice>"]; plain programs never
    contain one, and {!graph_mechanism} maps it back to a proper violation
    reply. *)

val run_ast :
  ?fuel:int ->
  ?cost:Expr.cost_model ->
  ?hook:Hook.t ->
  Ast.prog ->
  Secpol_core.Value.t array ->
  Secpol_core.Program.outcome
(** Execute a structured program directly. *)

val graph_program :
  ?fuel:int ->
  ?cost:Expr.cost_model ->
  ?hook:Hook.t ->
  ?emit:Emit.t ->
  Graph.t ->
  Secpol_core.Program.t
(** Package a flowchart as an extensional program. *)

val ast_program :
  ?fuel:int -> ?cost:Expr.cost_model -> ?hook:Hook.t -> Ast.prog -> Secpol_core.Program.t

val monitor_fault_prefix : string
(** Prefix of [Fault] messages that report an injected or detected failure
    of the machinery itself (as opposed to a fault of the interpreted
    program, like division by zero). *)

val violation_prefix : string
(** Prefix of the [Fault] message used to smuggle a [Halt_violation] notice
    through a program outcome. *)

val reply_of_outcome : Secpol_core.Program.outcome -> Secpol_core.Mechanism.reply
(** Interpret an outcome as a mechanism reply: values grant, violation
    faults (from [Halt_violation] boxes) deny with their notice, other
    faults fail, divergence hangs. *)

val graph_mechanism :
  ?fuel:int -> ?hook:Hook.t -> ?emit:Emit.t -> Graph.t -> Secpol_core.Mechanism.t
(** Package a flowchart that {e is} a mechanism (it may contain violation
    halts) as a {!Secpol_core.Mechanism.t}. *)
