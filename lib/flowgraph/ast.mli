(** Structured programs (a While-language).

    The paper works directly on flowcharts, but its Section 4 transforms
    "recognize higher-level language constructs" — if-then-else, while, and
    general single-entry single-exit structures. A structured AST makes
    those constructs syntactically apparent, so the transforms and the
    static certification of Section 5 are defined here, and {!Compile} maps
    the AST onto the paper's flowchart graphs for the dynamic mechanisms. *)

type t =
  | Skip
  | Assign of Var.t * Expr.t
  | Seq of t list
  | If of Expr.pred * t * t
  | While of Expr.pred * t
  | At of Span.t * t
      (** Source-span annotation, semantically transparent: every analysis
          and interpreter treats [At (sp, s)] exactly as [s]. The parser
          wraps each statement it reads; hand-built programs carry no
          spans. *)

type prog = {
  name : string;
  arity : int;  (** number of input variables *)
  body : t;
}

val prog : name:string -> arity:int -> t -> prog
(** Builds and {!validate}s a program.
    @raise Invalid_argument if validation fails. *)

val validate : prog -> (unit, string) result
(** Checks that every input variable mentioned has index < arity. *)

val at : Span.t -> t -> t
(** [at sp s] is [At (sp, s)]. *)

val span_of : t -> Span.t option
(** The outermost annotation, if any. *)

val strip_spans : t -> t
(** Remove every [At] node — for structural comparison against span-free
    programs. *)

val strip_spans_prog : prog -> prog

val assigned_vars : t -> Var.Set.t
(** Variables appearing on the left of an assignment. *)

val read_vars : t -> Var.Set.t
(** Variables read in expressions or predicates anywhere in the statement. *)

val max_reg : prog -> int
(** Largest register index used, or [-1] if none. *)

val seq : t list -> t
(** Smart sequence: flattens nested [Seq]s and drops [Skip]s. *)

val map_exprs :
  expr:(Expr.t -> Expr.t) -> pred:(Expr.pred -> Expr.pred) -> t -> t
(** Rewrite every expression and predicate in place (statement structure
    unchanged). Used e.g. to pre-simplify a program before static
    certification. *)

val simplify_exprs : prog -> prog
(** {!map_exprs} with {!Expr.simplify} — algebraically identical, often
    syntactically smaller; dead operands like [x * 0] disappear, which
    static analyses reward. *)

val prune_dead : t -> t
(** Remove branches a constant test can never take: [if true] keeps only
    the then-arm, [if false] only the else-arm, [while false] disappears.
    Tests are simplified ({!Expr.simplify_pred}) on the way, so composing
    with {!simplify_exprs} removes exactly the code constant folding proves
    dead. Meaning-preserving on all inputs. *)

val prune_dead_branches : prog -> prog
(** {!prune_dead} on the program body. *)

val size : t -> int
(** Number of statement nodes, for reporting on generated corpora. *)

val loop_free : t -> bool

val pp : Format.formatter -> t -> unit
val pp_prog : Format.formatter -> prog -> unit
val to_string : t -> string
