type eval_error =
  | Division_by_zero
  | Modulus_by_zero
  | Unbound_input of int

let error_message = function
  | Division_by_zero -> "division by zero"
  | Modulus_by_zero -> "modulus by zero"
  | Unbound_input i -> Printf.sprintf "unbound input variable x%d" i

exception Runtime_fault of eval_error

type t =
  | Const of int
  | Var of Var.t
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Bor of t * t
  | Band of t * t
  | Bnot of t
  | Cond of pred * t * t

and pred =
  | True
  | False
  | Cmp of cmp * t * t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

and cmp = Eq | Ne | Lt | Le | Gt | Ge

let rec eval env = function
  | Const n -> n
  | Var v -> env v
  | Neg e -> -eval env e
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) ->
      let d = eval env b in
      if d = 0 then raise (Runtime_fault Division_by_zero) else eval env a / d
  | Mod (a, b) ->
      let d = eval env b in
      if d = 0 then raise (Runtime_fault Modulus_by_zero) else eval env a mod d
  | Bor (a, b) -> eval env a lor eval env b
  | Band (a, b) -> eval env a land eval env b
  | Bnot a -> lnot (eval env a)
  | Cond (p, a, b) ->
      (* Branchless: predicate and both arms are always evaluated. *)
      let c = eval_pred env p in
      let va = eval env a in
      let vb = eval env b in
      if c then va else vb

and eval_pred env = function
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> (
      let va = eval env a and vb = eval env b in
      match op with
      | Eq -> va = vb
      | Ne -> va <> vb
      | Lt -> va < vb
      | Le -> va <= vb
      | Gt -> va > vb
      | Ge -> va >= vb)
  | And (p, q) ->
      (* No short-circuit: predicate cost must not depend on data. *)
      let a = eval_pred env p and b = eval_pred env q in
      a && b
  | Or (p, q) ->
      let a = eval_pred env p and b = eval_pred env q in
      a || b
  | Not p -> not (eval_pred env p)

type cost_model = Uniform | Operand_sized

let bit_width n =
  let n = abs n in
  let rec go acc n = if n = 0 then max acc 1 else go (acc + 1) (n lsr 1) in
  go 0 n

(* Same semantics as [eval]/[eval_pred], additionally accounting for the
   operand-dependent cost of the "long" arithmetic operations. *)
let rec eval_cost model env e =
  match e with
  | Const n -> (n, 0)
  | Var v -> (env v, 0)
  | Neg a ->
      let va, ca = eval_cost model env a in
      (-va, ca)
  | Add (a, b) ->
      let va, ca = eval_cost model env a in
      let vb, cb = eval_cost model env b in
      (va + vb, ca + cb)
  | Sub (a, b) ->
      let va, ca = eval_cost model env a in
      let vb, cb = eval_cost model env b in
      (va - vb, ca + cb)
  | Mul (a, b) ->
      let va, ca = eval_cost model env a in
      let vb, cb = eval_cost model env b in
      (va * vb, ca + cb + long_op_cost model va vb)
  | Div (a, b) ->
      let va, ca = eval_cost model env a in
      let vb, cb = eval_cost model env b in
      if vb = 0 then raise (Runtime_fault Division_by_zero)
      else (va / vb, ca + cb + long_op_cost model va vb)
  | Mod (a, b) ->
      let va, ca = eval_cost model env a in
      let vb, cb = eval_cost model env b in
      if vb = 0 then raise (Runtime_fault Modulus_by_zero)
      else (va mod vb, ca + cb + long_op_cost model va vb)
  | Bor (a, b) ->
      let va, ca = eval_cost model env a in
      let vb, cb = eval_cost model env b in
      (va lor vb, ca + cb)
  | Band (a, b) ->
      let va, ca = eval_cost model env a in
      let vb, cb = eval_cost model env b in
      (va land vb, ca + cb)
  | Bnot a ->
      let va, ca = eval_cost model env a in
      (lnot va, ca)
  | Cond (p, a, b) ->
      let c, cp = eval_pred_cost model env p in
      let va, ca = eval_cost model env a in
      let vb, cb = eval_cost model env b in
      ((if c then va else vb), cp + ca + cb)

and eval_pred_cost model env p =
  match p with
  | True -> (true, 0)
  | False -> (false, 0)
  | Cmp (op, a, b) ->
      let va, ca = eval_cost model env a in
      let vb, cb = eval_cost model env b in
      let holds =
        match op with
        | Eq -> va = vb
        | Ne -> va <> vb
        | Lt -> va < vb
        | Le -> va <= vb
        | Gt -> va > vb
        | Ge -> va >= vb
      in
      (holds, ca + cb)
  | And (p, q) ->
      let a, ca = eval_pred_cost model env p in
      let b, cb = eval_pred_cost model env q in
      (a && b, ca + cb)
  | Or (p, q) ->
      let a, ca = eval_pred_cost model env p in
      let b, cb = eval_pred_cost model env q in
      (a || b, ca + cb)
  | Not p ->
      let a, ca = eval_pred_cost model env p in
      (not a, ca)

and long_op_cost model va vb =
  match model with
  | Uniform -> 0
  | Operand_sized -> bit_width va + bit_width vb

let rec vars = function
  | Const _ -> Var.Set.empty
  | Var v -> Var.Set.singleton v
  | Neg e | Bnot e -> vars e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Bor (a, b) | Band (a, b) ->
      Var.Set.union (vars a) (vars b)
  | Cond (p, a, b) ->
      Var.Set.union (pred_vars p) (Var.Set.union (vars a) (vars b))

and pred_vars = function
  | True | False -> Var.Set.empty
  | Cmp (_, a, b) -> Var.Set.union (vars a) (vars b)
  | And (p, q) | Or (p, q) -> Var.Set.union (pred_vars p) (pred_vars q)
  | Not p -> pred_vars p

let rec subst sigma = function
  | Const n -> Const n
  | Var v -> ( match Var.Map.find_opt v sigma with Some e -> e | None -> Var v)
  | Neg e -> Neg (subst sigma e)
  | Add (a, b) -> Add (subst sigma a, subst sigma b)
  | Sub (a, b) -> Sub (subst sigma a, subst sigma b)
  | Mul (a, b) -> Mul (subst sigma a, subst sigma b)
  | Div (a, b) -> Div (subst sigma a, subst sigma b)
  | Mod (a, b) -> Mod (subst sigma a, subst sigma b)
  | Bor (a, b) -> Bor (subst sigma a, subst sigma b)
  | Band (a, b) -> Band (subst sigma a, subst sigma b)
  | Bnot a -> Bnot (subst sigma a)
  | Cond (p, a, b) -> Cond (subst_pred sigma p, subst sigma a, subst sigma b)

and subst_pred sigma = function
  | True -> True
  | False -> False
  | Cmp (op, a, b) -> Cmp (op, subst sigma a, subst sigma b)
  | And (p, q) -> And (subst_pred sigma p, subst_pred sigma q)
  | Or (p, q) -> Or (subst_pred sigma p, subst_pred sigma q)
  | Not p -> Not (subst_pred sigma p)

let equal (a : t) (b : t) = a = b
let equal_pred (a : pred) (b : pred) = a = b

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Neg a -> ( match simplify a with Const n -> Const (-n) | a -> Neg a)
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x + y)
      | Const 0, e | e, Const 0 -> e
      | a, b -> Add (a, b))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x - y)
      | e, Const 0 -> e
      | a, b -> Sub (a, b))
  | Mul (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x * y)
      | Const 0, _ | _, Const 0 -> Const 0
      | Const 1, e | e, Const 1 -> e
      | a, b -> Mul (a, b))
  | Div (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y when y <> 0 -> Const (x / y)
      | a, b -> Div (a, b))
  | Mod (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y when y <> 0 -> Const (x mod y)
      | a, b -> Mod (a, b))
  | Bor (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x lor y)
      | Const 0, e | e, Const 0 -> e
      | a, b -> Bor (a, b))
  | Band (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x land y)
      | Const 0, _ | _, Const 0 -> Const 0
      | a, b -> Band (a, b))
  | Bnot a -> ( match simplify a with Const n -> Const (lnot n) | a -> Bnot a)
  | Cond (p, a, b) -> (
      let p = simplify_pred p and a = simplify a and b = simplify b in
      match p with
      | True -> a
      | False -> b
      | _ -> if equal a b then a else Cond (p, a, b))

and simplify_pred p =
  match p with
  | True | False -> p
  | Cmp (op, a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y ->
          let holds =
            match op with
            | Eq -> x = y
            | Ne -> x <> y
            | Lt -> x < y
            | Le -> x <= y
            | Gt -> x > y
            | Ge -> x >= y
          in
          if holds then True else False
      | a, b -> Cmp (op, a, b))
  | And (p, q) -> (
      match (simplify_pred p, simplify_pred q) with
      | True, r | r, True -> r
      | False, _ | _, False -> False
      | p, q -> And (p, q))
  | Or (p, q) -> (
      match (simplify_pred p, simplify_pred q) with
      | False, r | r, False -> r
      | True, _ | _, True -> True
      | p, q -> Or (p, q))
  | Not p -> (
      match simplify_pred p with
      | True -> False
      | False -> True
      | p -> Not p)

let rec pp ppf = function
  | Const n -> Format.pp_print_int ppf n
  | Var v -> Var.pp ppf v
  | Neg e -> Format.fprintf ppf "-(%a)" pp e
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Mod (a, b) -> Format.fprintf ppf "(%a %% %a)" pp a pp b
  | Bor (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
  | Band (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | Bnot a -> Format.fprintf ppf "~(%a)" pp a
  | Cond (p, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp_pred p pp a pp b

and pp_pred ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (op, a, b) ->
      let s =
        match op with
        | Eq -> "="
        | Ne -> "<>"
        | Lt -> "<"
        | Le -> "<="
        | Gt -> ">"
        | Ge -> ">="
      in
      Format.fprintf ppf "%a %s %a" pp a s pp b
  | And (p, q) -> Format.fprintf ppf "(%a and %a)" pp_pred p pp_pred q
  | Or (p, q) -> Format.fprintf ppf "(%a or %a)" pp_pred p pp_pred q
  | Not p -> Format.fprintf ppf "not (%a)" pp_pred p

let to_string e = Format.asprintf "%a" pp e
let pred_to_string p = Format.asprintf "%a" pp_pred p

module Build = struct
  let i n = Const n
  let x n = Var (Var.Input n)
  let r n = Var (Var.Reg n)
  let y = Var Var.Out
  let ( +: ) a b = Add (a, b)
  let ( -: ) a b = Sub (a, b)
  let ( *: ) a b = Mul (a, b)
  let ( /: ) a b = Div (a, b)
  let ( %: ) a b = Mod (a, b)
  let ( =: ) a b = Cmp (Eq, a, b)
  let ( <>: ) a b = Cmp (Ne, a, b)
  let ( <: ) a b = Cmp (Lt, a, b)
  let ( <=: ) a b = Cmp (Le, a, b)
  let ( >: ) a b = Cmp (Gt, a, b)
  let ( >=: ) a b = Cmp (Ge, a, b)
  let ( &&: ) p q = And (p, q)
  let ( ||: ) p q = Or (p, q)
  let not_ p = Not p
  let cond p a b = Cond (p, a, b)
end
