(** Flowchart programs: the paper's Section 3 program representation.

    A flowchart is a finite connected directed graph of boxes: one start
    box, assignment boxes, decision boxes, and halt boxes. Execution begins
    at the start box with program variables and the output variable
    initialized to 0 and input variables initialized to the input value;
    the value of [y] at a halt box is the output.

    Two kinds of halt box exist here: the ordinary [Halt] that outputs [y],
    and [Halt_violation] that outputs the violation notice Λ. Plain programs
    never contain [Halt_violation]; it is the target of the surveillance
    instrumentation's rule (4), which lets an instrumented flowchart {e be} a
    protection mechanism while remaining an ordinary flowchart. *)

type node =
  | Start of int  (** successor *)
  | Assign of Var.t * Expr.t * int  (** [v := e], successor *)
  | Decision of Expr.pred * int * int  (** predicate, true-successor, false-successor *)
  | Halt  (** output the value of [y] *)
  | Halt_violation of string  (** output a violation notice *)

type t = {
  name : string;
  arity : int;
  nodes : node array;
  entry : int;  (** index of the unique start box *)
  spans : Span.t option array;
      (** per-node source provenance, same length as [nodes]; [None] for
          nodes with no source counterpart (hand-built graphs, start/halt
          boxes, instrumentation) *)
}

val make : ?spans:Span.t option array -> name:string -> arity:int -> entry:int -> node array -> t
(** Builds and validates. [spans] defaults to all-[None].
    @raise Invalid_argument if malformed (see {!validate}). *)

val validate : t -> (unit, string) result
(** Checks: the entry is the unique [Start]; all edges in range; no edge
    targets the start box (so every cycle contains a step-consuming box, and
    fuel bounds every execution); input indices are < arity; the span table
    matches the node array in length. *)

val span : t -> int -> Span.t option
(** Source span of node [n], if it came from a source statement. *)

val successors : t -> int -> int list

val node_count : t -> int

val halt_nodes : t -> int list
(** Indices of [Halt] and [Halt_violation] boxes. *)

val reachable : t -> bool array
(** [reachable g].(n) iff node [n] is reachable from the entry. *)

val max_reg : t -> int
(** Largest register index used, [-1] if none. *)

val map_nodes : (int -> node -> node) -> t -> t
(** Rebuild with rewritten nodes (indices preserved); revalidates. *)

val pp : Format.formatter -> t -> unit
