(** Source spans: where a statement (or flowchart box) came from in a
    [.spl] file.

    Spans originate in the lexer's token positions, are attached to AST
    statements by the parser, and ride through {!Compile} onto flowchart
    nodes, so static analyses ({!Secpol_staticflow.Lint} in particular) can
    point diagnostics at the offending source line rather than at a bare
    node index. Positions are 1-based; [end_col] is exclusive (the column
    just past the last character). *)

type t = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;  (** exclusive *)
}

val make :
  start_line:int -> start_col:int -> end_line:int -> end_col:int -> t

val point : line:int -> col:int -> t
(** A zero-width span, for positions without a known extent. *)

val join : t -> t -> t
(** Smallest span covering both arguments. *)

val line : t -> int
(** The starting line — what a one-line diagnostic quotes. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [3:5-17] (one line) or [3:5-6:2] (spanning lines). *)

val to_string : t -> string
