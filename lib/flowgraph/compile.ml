(* Nodes are accumulated in a growable buffer; While needs its decision box
   allocated before its body (for the back edge), so the buffer supports
   patching. A parallel span table records, for every pushed node, the
   innermost [Ast.At] annotation enclosing the statement it came from. *)

type buffer = {
  mutable nodes : Graph.node array;
  mutable spans : Span.t option array;
  mutable len : int;
}

let create () =
  { nodes = Array.make 16 Graph.Halt; spans = Array.make 16 None; len = 0 }

let push buf ~span node =
  if buf.len = Array.length buf.nodes then begin
    let bigger = Array.make (2 * buf.len) Graph.Halt in
    Array.blit buf.nodes 0 bigger 0 buf.len;
    buf.nodes <- bigger;
    let bigger_spans = Array.make (2 * buf.len) None in
    Array.blit buf.spans 0 bigger_spans 0 buf.len;
    buf.spans <- bigger_spans
  end;
  buf.nodes.(buf.len) <- node;
  buf.spans.(buf.len) <- span;
  buf.len <- buf.len + 1;
  buf.len - 1

let patch buf i node = buf.nodes.(i) <- node

let rec stmt buf ~span ~next = function
  | Ast.Skip -> next
  | Ast.Assign (v, e) -> push buf ~span (Graph.Assign (v, e, next))
  | Ast.Seq l -> List.fold_right (fun st k -> stmt buf ~span ~next:k st) l next
  | Ast.If (p, a, b) ->
      let ia = stmt buf ~span ~next a in
      let ib = stmt buf ~span ~next b in
      push buf ~span (Graph.Decision (p, ia, ib))
  | Ast.While (p, body) ->
      let d = push buf ~span Graph.Halt (* placeholder *) in
      let ibody = stmt buf ~span ~next:d body in
      patch buf d (Graph.Decision (p, ibody, next));
      d
  | Ast.At (sp, s) -> stmt buf ~span:(Some sp) ~next s

let compile (p : Ast.prog) =
  let buf = create () in
  let halt = push buf ~span:None Graph.Halt in
  let body = stmt buf ~span:None ~next:halt p.Ast.body in
  let entry = push buf ~span:None (Graph.Start body) in
  Graph.make ~name:p.Ast.name ~arity:p.Ast.arity ~entry
    ~spans:(Array.sub buf.spans 0 buf.len)
    (Array.sub buf.nodes 0 buf.len)
