(** Integer expressions and predicates of the flowchart language.

    The paper allows "any reasonable choice" of recursive expressions and
    predicates; we provide integer arithmetic, comparisons and boolean
    connectives, plus two constructs this reproduction needs:

    - [Bor]/[Band]/[Bnot]: bitwise operations, used by the source-to-source
      surveillance instrumentation to manipulate taint sets encoded as
      integer bitmasks (Section 3's transformation rules work entirely inside
      the flowchart language, so set union must be expressible in it);
    - [Cond (p, e1, e2)]: a branchless select. It evaluates the predicate
      {e and both arms} (so its cost is independent of which arm is chosen),
      making it the target of the paper's if-then-else transform: control
      dependence on [p] becomes data dependence. *)

(** The ways expression evaluation can go wrong at run time. A typed error
    instead of a bare [failwith]: the interpreters catch {!Runtime_fault}
    and turn it into a fault {e outcome}, and the fail-secure supervisor
    ([Secpol_fault.Guard]) maps that outcome to a [Degraded] violation
    notice — so no input can crash a monitor or the CLI. *)
type eval_error =
  | Division_by_zero
  | Modulus_by_zero
  | Unbound_input of int
      (** The expression names an input variable at an index outside the
          program's arity (raised by [Store] on lookup). *)

val error_message : eval_error -> string

exception Runtime_fault of eval_error
(** Raised by {!eval} / {!eval_pred} on division or modulus by zero, and by
    [Store] on an out-of-range input variable. Never escapes the
    interpreters. *)

type t =
  | Const of int
  | Var of Var.t
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Bor of t * t
  | Band of t * t
  | Bnot of t
  | Cond of pred * t * t

and pred =
  | True
  | False
  | Cmp of cmp * t * t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

and cmp = Eq | Ne | Lt | Le | Gt | Ge

val eval : (Var.t -> int) -> t -> int
val eval_pred : (Var.t -> int) -> pred -> bool

(** How much time expression evaluation itself consumes.

    Theorem 3' carries a side condition: "the expressions and predicates
    allowed in a flowchart ... must be restricted to those that can be
    implemented in time independent of disallowed data values". The two
    models make the condition testable:

    - [Uniform]: every box costs one step regardless of operand values —
      the discipline the theorem assumes (and the library's default);
    - [Operand_sized]: multiplication, division and modulus additionally
      cost the bit-width of their operands, the way naive bignum hardware
      would. Under this model even the timed surveillance mechanism leaks:
      a granted run's duration can encode a disallowed operand that never
      reaches the output. Experiment E12 measures exactly that. *)
type cost_model = Uniform | Operand_sized

val eval_cost : cost_model -> (Var.t -> int) -> t -> int * int
(** [(value, extra_steps)]; [extra_steps] is 0 under [Uniform]. *)

val eval_pred_cost : cost_model -> (Var.t -> int) -> pred -> bool * int

val vars : t -> Var.Set.t
(** All variables read by the expression, including those of embedded
    predicates and of {e both} arms of a [Cond] (the surveillance rules must
    consider everything the value may depend on). *)

val pred_vars : pred -> Var.Set.t

val subst : t Var.Map.t -> t -> t
(** Simultaneous substitution of expressions for variables; used by program
    transforms to compose straight-line assignment blocks into single
    expressions. *)

val subst_pred : t Var.Map.t -> pred -> pred

val simplify : t -> t
(** Constant folding plus the algebraic laws the paper's Example 7 relies
    on: in particular [Cond (p, e, e) = e] — once both branches compute the
    same expression, the dependence on the test disappears. *)

val simplify_pred : pred -> pred

val equal : t -> t -> bool
val equal_pred : pred -> pred -> bool
val pp : Format.formatter -> t -> unit
val pp_pred : Format.formatter -> pred -> unit
val to_string : t -> string
val pred_to_string : pred -> string

(** Concise construction helpers for the corpus and tests. *)
module Build : sig
  val i : int -> t
  (** Integer literal. *)

  val x : int -> t
  (** Input variable. *)

  val r : int -> t
  (** Register. *)

  val y : t
  (** The output variable. *)

  val ( +: ) : t -> t -> t
  val ( -: ) : t -> t -> t
  val ( *: ) : t -> t -> t
  val ( /: ) : t -> t -> t
  val ( %: ) : t -> t -> t
  val ( =: ) : t -> t -> pred
  val ( <>: ) : t -> t -> pred
  val ( <: ) : t -> t -> pred
  val ( <=: ) : t -> t -> pred
  val ( >: ) : t -> t -> pred
  val ( >=: ) : t -> t -> pred
  val ( &&: ) : pred -> pred -> pred
  val ( ||: ) : pred -> pred -> pred
  val not_ : pred -> pred
  val cond : pred -> t -> t -> t
end
