module Program = Secpol_core.Program
module Value = Secpol_core.Value

let default_fuel = 100_000
let violation_prefix = "violation:"

let finish result steps = { Program.result; steps }

let run_graph ?(fuel = default_fuel) ?(cost = Expr.Uniform) g inputs =
  if Array.length inputs <> g.Graph.arity then
    invalid_arg
      (Printf.sprintf "run_graph %s: expected %d inputs, got %d" g.Graph.name
         g.Graph.arity (Array.length inputs));
  match Store.of_values ~inputs ~max_reg:(Graph.max_reg g) with
  | exception Invalid_argument m -> finish (Program.Fault m) 0
  | store -> (
      let env = Store.lookup store in
      let last_steps = ref 0 in
      let rec go node steps =
        last_steps := steps;
        match g.Graph.nodes.(node) with
        | Graph.Start next -> go next steps
        | Graph.Assign (v, e, next) ->
            if steps >= fuel then finish Program.Diverged steps
            else begin
              let value, extra = Expr.eval_cost cost env e in
              Store.set store v value;
              go next (steps + 1 + extra)
            end
        | Graph.Decision (p, if_true, if_false) ->
            if steps >= fuel then finish Program.Diverged steps
            else begin
              let taken, extra = Expr.eval_pred_cost cost env p in
              go (if taken then if_true else if_false) (steps + 1 + extra)
            end
        | Graph.Halt ->
            finish (Program.Value (Value.Int (Store.output store))) steps
        | Graph.Halt_violation notice ->
            finish (Program.Fault (violation_prefix ^ notice)) steps
      in
      try go g.Graph.entry 0
      with Expr.Runtime_fault m -> finish (Program.Fault m) !last_steps)

let run_ast ?(fuel = default_fuel) ?(cost = Expr.Uniform) (p : Ast.prog) inputs =
  if Array.length inputs <> p.Ast.arity then
    invalid_arg
      (Printf.sprintf "run_ast %s: expected %d inputs, got %d" p.Ast.name
         p.Ast.arity (Array.length inputs));
  match Store.of_values ~inputs ~max_reg:0 with
  | exception Invalid_argument m -> finish (Program.Fault m) 0
  | store -> (
      let env = Store.lookup store in
      let exception Out_of_fuel of int in
      let steps = ref 0 in
      let tick extra =
        steps := !steps + 1 + extra;
        if !steps > fuel then raise (Out_of_fuel !steps)
      in
      let rec exec = function
        | Ast.Skip -> ()
        | Ast.Assign (v, e) ->
            let value, extra = Expr.eval_cost cost env e in
            tick extra;
            Store.set store v value
        | Ast.Seq l -> List.iter exec l
        | Ast.If (p, a, b) ->
            let taken, extra = Expr.eval_pred_cost cost env p in
            tick extra;
            if taken then exec a else exec b
        | Ast.While (p, body) as loop ->
            let taken, extra = Expr.eval_pred_cost cost env p in
            tick extra;
            if taken then begin
              exec body;
              exec loop
            end
        | Ast.At (_, s) -> exec s
      in
      match exec p.Ast.body with
      | () -> finish (Program.Value (Value.Int (Store.output store))) !steps
      | exception Out_of_fuel s -> finish Program.Diverged s
      | exception Expr.Runtime_fault m -> finish (Program.Fault m) !steps)

let graph_program ?fuel ?cost g =
  Program.make ~name:g.Graph.name ~arity:g.Graph.arity (run_graph ?fuel ?cost g)

let reply_of_outcome (o : Program.outcome) =
  let module Mechanism = Secpol_core.Mechanism in
  let response =
    match o.Program.result with
    | Program.Value v -> Mechanism.Granted v
    | Program.Diverged -> Mechanism.Hung
    | Program.Fault m ->
        let p = violation_prefix in
        if String.length m >= String.length p && String.sub m 0 (String.length p) = p
        then
          Mechanism.Denied
            (String.sub m (String.length p) (String.length m - String.length p))
        else Mechanism.Failed m
  in
  { Mechanism.response; steps = o.Program.steps }

let graph_mechanism ?fuel g =
  Secpol_core.Mechanism.make ~name:g.Graph.name ~arity:g.Graph.arity (fun a ->
      reply_of_outcome (run_graph ?fuel g a))

let ast_program ?fuel ?cost (p : Ast.prog) =
  Program.make ~name:p.Ast.name ~arity:p.Ast.arity (run_ast ?fuel ?cost p)
