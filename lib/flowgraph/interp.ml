module Program = Secpol_core.Program
module Value = Secpol_core.Value

let default_fuel = 100_000
let violation_prefix = "violation:"
let monitor_fault_prefix = "monitor fault: "

let finish result steps = { Program.result; steps }

let arity_fault what name ~expected ~got =
  finish
    (Program.Fault
       (Printf.sprintf "%s %s: expected %d inputs, got %d" what name expected
          got))
    0

(* What an injected fault does to a plain (un-monitored) run. The plain
   interpreter has no redundant state, so Corrupt is reported as a
   detected corruption fault; Starve collapses the remaining fuel. *)
let plain_fault = function
  | Hook.Crash m -> finish (Program.Fault (monitor_fault_prefix ^ m))
  | Hook.Corrupt ->
      finish (Program.Fault (monitor_fault_prefix ^ "state corruption detected"))
  | Hook.Starve -> finish Program.Diverged

let run_graph ?(fuel = default_fuel) ?(cost = Expr.Uniform)
    ?(hook = Hook.none) ?(emit = Emit.none) g inputs =
  if Array.length inputs <> g.Graph.arity then
    arity_fault "run_graph" g.Graph.name ~expected:g.Graph.arity
      ~got:(Array.length inputs)
  else
    match Store.of_values ~inputs ~max_reg:(Graph.max_reg g) with
    | exception Invalid_argument m -> finish (Program.Fault m) 0
    | store -> (
        let env = Store.lookup store in
        let last_steps = ref 0 in
        let rec go node steps =
          last_steps := steps;
          match g.Graph.nodes.(node) with
          | Graph.Start next -> go next steps
          | Graph.Assign (v, e, next) -> (
              match hook ~step:steps with
              | Some a -> plain_fault a steps
              | None ->
                  if steps >= fuel then finish Program.Diverged steps
                  else begin
                    let value, extra = Expr.eval_cost cost env e in
                    Store.set store v value;
                    Emit.box emit ~step:steps ~node;
                    Emit.assign emit ~step:steps ~node ~var:v ~value;
                    go next (steps + 1 + extra)
                  end)
          | Graph.Decision (p, if_true, if_false) -> (
              match hook ~step:steps with
              | Some a -> plain_fault a steps
              | None ->
                  if steps >= fuel then finish Program.Diverged steps
                  else begin
                    let taken, extra = Expr.eval_pred_cost cost env p in
                    Emit.box emit ~step:steps ~node;
                    go (if taken then if_true else if_false) (steps + 1 + extra)
                  end)
          | Graph.Halt -> (
              match hook ~step:steps with
              | Some a -> plain_fault a steps
              | None ->
                  Emit.box emit ~step:steps ~node;
                  finish (Program.Value (Value.Int (Store.output store))) steps)
          | Graph.Halt_violation notice ->
              Emit.box emit ~step:steps ~node;
              finish (Program.Fault (violation_prefix ^ notice)) steps
        in
        try go g.Graph.entry 0
        with Expr.Runtime_fault e ->
          finish (Program.Fault (Expr.error_message e)) !last_steps)

let run_ast ?(fuel = default_fuel) ?(cost = Expr.Uniform) ?(hook = Hook.none)
    (p : Ast.prog) inputs =
  if Array.length inputs <> p.Ast.arity then
    arity_fault "run_ast" p.Ast.name ~expected:p.Ast.arity
      ~got:(Array.length inputs)
  else
    match Store.of_values ~inputs ~max_reg:0 with
    | exception Invalid_argument m -> finish (Program.Fault m) 0
    | store -> (
        let env = Store.lookup store in
        let exception Out_of_fuel of int in
        let exception Injected of Hook.action * int in
        let steps = ref 0 in
        let tick extra =
          (match hook ~step:!steps with
          | Some a -> raise (Injected (a, !steps))
          | None -> ());
          steps := !steps + 1 + extra;
          if !steps > fuel then raise (Out_of_fuel !steps)
        in
        let rec exec = function
          | Ast.Skip -> ()
          | Ast.Assign (v, e) ->
              let value, extra = Expr.eval_cost cost env e in
              tick extra;
              Store.set store v value
          | Ast.Seq l -> List.iter exec l
          | Ast.If (p, a, b) ->
              let taken, extra = Expr.eval_pred_cost cost env p in
              tick extra;
              if taken then exec a else exec b
          | Ast.While (p, body) as loop ->
              let taken, extra = Expr.eval_pred_cost cost env p in
              tick extra;
              if taken then begin
                exec body;
                exec loop
              end
          | Ast.At (_, s) -> exec s
        in
        match exec p.Ast.body with
        | () -> finish (Program.Value (Value.Int (Store.output store))) !steps
        | exception Out_of_fuel s -> finish Program.Diverged s
        | exception Injected (a, s) -> plain_fault a s
        | exception Expr.Runtime_fault e ->
            finish (Program.Fault (Expr.error_message e)) !steps)

let graph_program ?fuel ?cost ?hook ?emit g =
  Program.make ~name:g.Graph.name ~arity:g.Graph.arity
    (run_graph ?fuel ?cost ?hook ?emit g)

let reply_of_outcome (o : Program.outcome) =
  let module Mechanism = Secpol_core.Mechanism in
  let response =
    match o.Program.result with
    | Program.Value v -> Mechanism.Granted v
    | Program.Diverged -> Mechanism.Hung
    | Program.Fault m ->
        let p = violation_prefix in
        if String.length m >= String.length p && String.sub m 0 (String.length p) = p
        then
          Mechanism.Denied
            (String.sub m (String.length p) (String.length m - String.length p))
        else Mechanism.Failed m
  in
  { Mechanism.response; steps = o.Program.steps }

let graph_mechanism ?fuel ?hook ?emit g =
  Secpol_core.Mechanism.make ~name:g.Graph.name ~arity:g.Graph.arity (fun a ->
      reply_of_outcome (run_graph ?fuel ?hook ?emit g a))

let ast_program ?fuel ?cost ?hook (p : Ast.prog) =
  Program.make ~name:p.Ast.name ~arity:p.Ast.arity (run_ast ?fuel ?cost ?hook p)
